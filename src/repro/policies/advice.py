"""Learning-augmented scheduling: rounding driven by predicted OPT.

The advice model follows the learning-augmented algorithms literature
(Lykouris–Vassilvitskii style): the algorithm consumes an untrusted
prediction and must be *consistent* (with perfect advice it matches the
optimum) and *robust* (with adversarial advice it never does worse than
the best advice-free guarantee — here the paper's 9/5-approximation).

Advice format
-------------
A prediction maps each canonical-forest node ``i`` to the number of
active slots the predicted optimum opens in ``i``'s *exclusive region*
(the slots counted by ``L(i)``).  This is exactly the shape of the
rounded vector ``x̃`` the paper's Algorithm 1 produces, so the advice
can be dropped straight into the Lemma 4.1 flow + wrap-around extraction
in place of the LP-and-round pipeline:

1. clamp the advice into ``[0, L(i)]`` per node;
2. ask :func:`~repro.flow.feasibility.node_assignment` for a flow
   witness; if the advice under-provisions, the defensive repair loop
   opens extra slots (deepest first) until the flow accepts;
3. extract the schedule with
   :func:`~repro.flow.assignment.schedule_from_node_counts`.

*Consistency*: the per-node slot counts of an optimal schedule are a
feasible flow witness, so perfect advice needs no repairs and the
extracted schedule opens exactly ``OPT`` slots.

*Robustness*: the policy always also runs the advice-free 9/5 pipeline
and keeps the cheaper of the two schedules, so no advice — however
adversarial — can push it past the ``9/5 · LP`` certificate.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.baselines.exact import BudgetExceeded, solve_exact
from repro.core.algorithm import _repair, solve_nested
from repro.core.schedule import Schedule
from repro.flow.assignment import schedule_from_node_counts
from repro.flow.feasibility import node_assignment
from repro.instances.jobs import Instance
from repro.policies.base import Policy, PolicyError
from repro.policies.registry import register_policy
from repro.tree.canonical import CanonicalInstance, canonicalize

#: An advice provider sees the canonicalized instance and predicts, per
#: forest node, how many exclusive-region slots the optimum opens there.
AdviceProvider = Callable[[CanonicalInstance], Mapping[int, int]]


def perfect_advice(
    canonical: CanonicalInstance, *, node_budget: int = 200_000
) -> dict[int, int]:
    """Oracle advice: the true optimum's per-node active-slot counts.

    Each active slot is charged to the deepest forest node containing it
    (= the node owning it exclusively).  On a blown search budget the
    incumbent's counts are used — still valid advice, just not provably
    optimal.
    """
    try:
        result = solve_exact(canonical.instance, node_budget=node_budget)
    except BudgetExceeded as exc:
        incumbent = exc.incumbent()
        if incumbent is None:
            raise
        result = incumbent
    forest = canonical.forest
    counts: dict[int, int] = {}
    for t in result.slots:
        node = forest.node_at_slot(t)
        if node is not None:
            counts[node] = counts.get(node, 0) + 1
    return counts


def adversarial_advice(canonical: CanonicalInstance) -> dict[int, int]:
    """Worst-case advice: predict that *no* slots are needed anywhere.

    Maximally misleading while type-correct — every node is
    under-provisioned, so the repair loop must rediscover the whole
    schedule from nothing.  Robustness means the policy still ends at
    or below the 9/5 certificate.
    """
    return {i: 0 for i in range(canonical.forest.m)}


class AdviceAugmentedPolicy(Policy):
    """Round with predicted per-subtree OPT; fall back to 9/5 if worse."""

    kind = "advice"

    def __init__(
        self,
        provider: AdviceProvider,
        name: str = "advice",
        description: str = "",
    ) -> None:
        super().__init__()
        self.provider = provider
        self.name = name
        self.description = description

    def supports(self, instance: Instance) -> bool:
        return instance.is_laminar

    def _validated(
        self, canonical: CanonicalInstance, raw: Mapping[int, int]
    ) -> np.ndarray:
        """Clamp advice into a usable ``x`` vector; reject malformed advice."""
        forest = canonical.forest
        x = np.zeros(forest.m, dtype=int)
        for node, count in raw.items():
            if not isinstance(node, int) or not (0 <= node < forest.m):
                raise PolicyError(
                    f"advice for policy {self.name!r} names node {node!r}; "
                    f"forest has nodes 0..{forest.m - 1}"
                )
            if not isinstance(count, int) or isinstance(count, bool):
                raise PolicyError(
                    f"advice for policy {self.name!r} predicts {count!r} "
                    f"slots at node {node}; counts must be ints"
                )
            x[node] = min(max(count, 0), forest.length(node))
        return x

    def solve(self, instance: Instance) -> Schedule:
        canonical = canonicalize(instance)
        x = self._validated(canonical, self.provider(canonical))

        repairs = 0
        y = node_assignment(
            canonical.instance, canonical.forest, canonical.job_node, x
        )
        if y is None:
            x, repairs = _repair(canonical, x)
            x = x.astype(int)
            y = node_assignment(
                canonical.instance, canonical.forest, canonical.job_node, x
            )
            assert y is not None  # _repair guarantees acceptance
        advised = Schedule.from_assignment(
            instance,
            schedule_from_node_counts(
                canonical.instance, canonical.forest, canonical.job_node, x, y
            ).assignment,
        ).require_valid()

        # Robustness: never worse than the advice-free 9/5 pipeline.
        fallback = solve_nested(instance, check_feasibility=False)
        use_advice = advised.active_time <= fallback.active_time
        self.note(
            advice_cost=advised.active_time,
            fallback_cost=fallback.active_time,
            lp_value=fallback.lp_value,
            repairs=repairs,
            used="advice" if use_advice else "fallback",
        )
        return advised if use_advice else fallback.schedule


@register_policy(
    "advice-perfect",
    kind="advice",
    description="advice-augmented rounding fed the true optimum (consistency)",
)
def make_perfect_advice_policy() -> AdviceAugmentedPolicy:
    return AdviceAugmentedPolicy(
        perfect_advice,
        name="advice-perfect",
        description="advice-augmented rounding fed the true optimum",
    )


@register_policy(
    "advice-adversarial",
    kind="advice",
    description="advice-augmented rounding fed all-zero advice (robustness)",
)
def make_adversarial_advice_policy() -> AdviceAugmentedPolicy:
    return AdviceAugmentedPolicy(
        adversarial_advice,
        name="advice-adversarial",
        description="advice-augmented rounding fed all-zero advice",
    )
