"""Flow-based feasibility tests and schedule extraction.

Two levels of granularity:

* **Slot level** — given an arbitrary set of active slots, build the
  bipartite network ``s → jobs → slots → t`` with capacities
  ``(p_j, 1, g)`` and test ``maxflow == Σ p_j`` (the classic reduction
  mentioned in the paper's introduction; works for *any* instance,
  laminar or not).
* **Node level** — given a per-node open-slot count ``x̃`` on the window
  forest, build the paper's Lemma 4.1 network ``s → jobs → nodes → t``
  with capacities ``(p_j, x̃(i), g·x̃(i))``.  Equivalent to slot level for
  laminar instances because slots in a node's exclusive region are
  interchangeable, and much smaller.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.flow.dinic import MaxFlow
from repro.instances.jobs import Instance
from repro.tree.node import WindowForest


# ---------------------------------------------------------------------------
# Slot level
# ---------------------------------------------------------------------------


def _slot_network(
    instance: Instance, active: Sequence[int]
) -> tuple[MaxFlow, dict[tuple[int, int], int], int, int]:
    """Build the job/slot network; returns (net, job-slot edge ids, s, t)."""
    slots = sorted(set(active))
    slot_pos = {t: k for k, t in enumerate(slots)}
    n_jobs = instance.n
    source = n_jobs + len(slots)
    sink = source + 1
    net = MaxFlow(sink + 1)
    edge_ids: dict[tuple[int, int], int] = {}
    for k, job in enumerate(instance.jobs):
        net.add_edge(source, k, job.processing)
        for t in range(job.release, job.deadline):
            pos = slot_pos.get(t)
            if pos is not None:
                edge_ids[(job.id, t)] = net.add_edge(k, n_jobs + pos, 1)
    for pos in range(len(slots)):
        net.add_edge(n_jobs + pos, sink, instance.g)
    return net, edge_ids, source, sink


def slot_feasible(instance: Instance, active: Sequence[int]) -> bool:
    """Can all jobs be scheduled using only the given active slots?"""
    if instance.n == 0:
        return True
    net, _, s, t = _slot_network(instance, active)
    return net.max_flow(s, t) == instance.total_volume


def extract_schedule(
    instance: Instance, active: Sequence[int]
) -> Schedule | None:
    """A concrete schedule over the given slots, or ``None`` if infeasible."""
    if instance.n == 0:
        return Schedule.from_assignment(instance, {})
    net, edge_ids, s, t = _slot_network(instance, active)
    if net.max_flow(s, t) != instance.total_volume:
        return None
    assignment: dict[int, list[int]] = {j.id: [] for j in instance.jobs}
    for (jid, slot), eid in edge_ids.items():
        if net.edge_flow(eid) > 0.5:
            assignment[jid].append(slot)
    return Schedule.from_assignment(instance, assignment)


def all_slots_feasible(instance: Instance) -> bool:
    """Is the instance feasible at all (every slot active)?"""
    return slot_feasible(instance, list(instance.slots()))


# ---------------------------------------------------------------------------
# Node level (Lemma 4.1)
# ---------------------------------------------------------------------------


def _node_network(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    x: Sequence[int],
) -> tuple[MaxFlow, dict[tuple[int, int], int], int, int]:
    """Lemma 4.1 network: ``s → jobs → nodes → t``.

    A job ``j`` may use nodes in ``Des(k(j))`` with per-node cap ``x(i)``;
    node ``i`` forwards at most ``g·x(i)`` to the sink.
    """
    n_jobs = instance.n
    m = forest.m
    source = n_jobs + m
    sink = source + 1
    net = MaxFlow(sink + 1)
    edge_ids: dict[tuple[int, int], int] = {}
    for k, job in enumerate(instance.jobs):
        net.add_edge(source, k, job.processing)
        for i in forest.descendants(job_node[job.id]):
            if x[i] > 0:
                edge_ids[(i, job.id)] = net.add_edge(k, n_jobs + i, x[i])
    for i in range(m):
        if x[i] > 0:
            net.add_edge(n_jobs + i, sink, instance.g * x[i])
    return net, edge_ids, source, sink


def node_prober(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    *,
    backend: str | None = None,
):
    """Reusable Lemma 4.1 prober: build the node network once, probe many x̃.

    Returns an object with ``probe(x) -> bool`` (see
    :mod:`repro.flow.incremental`); repeated probes over the same
    instance/forest warm-start from the previous flow instead of
    rebuilding the network.
    """
    from repro.flow.incremental import make_prober

    buckets: list[list[int]] = [[] for _ in range(forest.m)]
    for k, job in enumerate(instance.jobs):
        for i in forest.descendants(job_node[job.id]):
            buckets[i].append(k)
    return make_prober(
        [job.processing for job in instance.jobs],
        buckets,
        instance.g,
        backend=backend,
    )


def node_feasible(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    x: Sequence[int],
) -> bool:
    """Is the per-node open-slot vector ``x`` feasible (Lemma 4.1)?

    One-shot convenience over :func:`node_prober`; callers that test
    many vectors on one forest should hold a prober instead.
    """
    if instance.n == 0:
        return True
    return node_prober(instance, forest, job_node).probe(list(x))


def node_assignment(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    x: Sequence[int],
) -> dict[tuple[int, int], int] | None:
    """Integral per-(node, job) units ``y(i, j)``, or ``None`` if infeasible."""
    if instance.n == 0:
        return {}
    net, edge_ids, s, t = _node_network(instance, forest, job_node, x)
    if net.max_flow(s, t) != instance.total_volume:
        return None
    return {
        key: int(round(net.edge_flow(eid)))
        for key, eid in edge_ids.items()
        if net.edge_flow(eid) > 0.5
    }
