"""Flow-based feasibility tests and schedule extraction.

Two levels of granularity:

* **Slot level** — given an arbitrary set of active slots, build the
  bipartite network ``s → jobs → slots → t`` with capacities
  ``(p_j, 1, g)`` and test ``maxflow == Σ p_j`` (the classic reduction
  mentioned in the paper's introduction; works for *any* instance,
  laminar or not).
* **Node level** — given a per-node open-slot count ``x̃`` on the window
  forest, build the paper's Lemma 4.1 network ``s → jobs → nodes → t``
  with capacities ``(p_j, x̃(i), g·x̃(i))``.  Equivalent to slot level for
  laminar instances because slots in a node's exclusive region are
  interchangeable, and much smaller.

Both builders assemble their edge lists as flat arrays and add them in
one :meth:`~repro.flow.dinic.MaxFlow.add_edges` call, in the same
global order the historical per-edge loops used — so edge ids are
identical across the ``csr`` and ``object`` kernels
(:mod:`repro.flow.csr`) and flow extraction vectorizes over the
resulting id arrays.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.schedule import Schedule
from repro.flow.csr import flow_network
from repro.flow.dinic import MaxFlow
from repro.instances.jobs import Instance
from repro.tree.node import WindowForest


# ---------------------------------------------------------------------------
# Slot level
# ---------------------------------------------------------------------------


def _slot_network(
    instance: Instance, active: Sequence[int]
) -> tuple[MaxFlow, tuple[np.ndarray, np.ndarray, np.ndarray], int, int]:
    """Build the job/slot network on the active kernel.

    Returns ``(net, (edge_ids, job_pos, slot), source, sink)`` where the
    three parallel arrays describe the job→slot edges: ``edge_ids[k]``
    connects the job at position ``job_pos[k]`` to slot ``slot[k]``.
    """
    slots = np.asarray(sorted(set(active)), dtype=np.int64)
    n_jobs = instance.n
    n_slots = int(slots.size)
    source = n_jobs + n_slots
    sink = source + 1
    net = flow_network(sink + 1)
    rels = np.fromiter(
        (j.release for j in instance.jobs), dtype=np.int64, count=n_jobs
    )
    deads = np.fromiter(
        (j.deadline for j in instance.jobs), dtype=np.int64, count=n_jobs
    )
    procs = np.fromiter(
        (j.processing for j in instance.jobs), dtype=np.int64, count=n_jobs
    )
    # Window slots of job k are the contiguous run slots[lo[k]:hi[k]].
    lo = np.searchsorted(slots, rels, side="left")
    hi = np.searchsorted(slots, deads, side="left")
    cnt = hi - lo
    total = int(cnt.sum())
    # Per-job block: source edge first, then its window edges (ascending
    # slot) — the historical per-job insertion order.
    block = cnt + 1
    starts = np.cumsum(block) - block
    size = n_jobs + total
    us = np.empty(size, dtype=np.int64)
    vs = np.empty(size, dtype=np.int64)
    caps = np.empty(size, dtype=np.int64)
    us[starts] = source
    vs[starts] = np.arange(n_jobs)
    caps[starts] = procs
    window_mask = np.ones(size, dtype=bool)
    window_mask[starts] = False
    widx = np.flatnonzero(window_mask)
    job_of = np.repeat(np.arange(n_jobs), cnt)
    within = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
    pos = lo[job_of] + within
    us[widx] = job_of
    vs[widx] = n_jobs + pos
    caps[widx] = 1
    eids = np.asarray(
        net.add_edges(
            np.concatenate([us, n_jobs + np.arange(n_slots)]),
            np.concatenate([vs, np.full(n_slots, sink, dtype=np.int64)]),
            np.concatenate(
                [caps, np.full(n_slots, instance.g, dtype=np.int64)]
            ),
        ),
        dtype=np.int64,
    )
    meta = (eids[widx], job_of, slots[pos] if total else slots[:0])
    return net, meta, source, sink


def slot_feasible(instance: Instance, active: Sequence[int]) -> bool:
    """Can all jobs be scheduled using only the given active slots?"""
    if instance.n == 0:
        return True
    net, _, s, t = _slot_network(instance, active)
    return net.max_flow(s, t) == instance.total_volume


def extract_schedule(
    instance: Instance, active: Sequence[int]
) -> Schedule | None:
    """A concrete schedule over the given slots, or ``None`` if infeasible."""
    if instance.n == 0:
        return Schedule.from_assignment(instance, {})
    net, (eids, job_pos, slot), s, t = _slot_network(instance, active)
    if net.max_flow(s, t) != instance.total_volume:
        return None
    icap = np.asarray(net._initial_cap, dtype=float)
    cap = np.asarray(net.cap, dtype=float)
    carrying = np.flatnonzero(icap[eids] - cap[eids] > 0.5)
    assignment: dict[int, list[int]] = {j.id: [] for j in instance.jobs}
    jobs = instance.jobs
    for k in carrying.tolist():
        assignment[jobs[job_pos[k]].id].append(int(slot[k]))
    return Schedule.from_assignment(instance, assignment)


def all_slots_feasible(instance: Instance) -> bool:
    """Is the instance feasible at all (every slot active)?"""
    return slot_feasible(instance, list(instance.slots()))


# ---------------------------------------------------------------------------
# Node level (Lemma 4.1)
# ---------------------------------------------------------------------------


def _node_network(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    x: Sequence[int],
) -> tuple[MaxFlow, tuple[list[int], list[int], list[int]], int, int]:
    """Lemma 4.1 network: ``s → jobs → nodes → t``.

    A job ``j`` may use nodes in ``Des(k(j))`` with per-node cap ``x(i)``;
    node ``i`` forwards at most ``g·x(i)`` to the sink.  Returns
    ``(net, (edge_ids, node, job_id), source, sink)`` with the three
    parallel lists describing the job→node edges.
    """
    n_jobs = instance.n
    m = forest.m
    source = n_jobs + m
    sink = source + 1
    net = flow_network(sink + 1)
    us: list[int] = []
    vs: list[int] = []
    caps: list[float] = []
    edge_pos: list[int] = []  # position of each job→node edge in us/vs
    edge_node: list[int] = []
    edge_jid: list[int] = []
    for k, job in enumerate(instance.jobs):
        us.append(source)
        vs.append(k)
        caps.append(job.processing)
        for i in forest.descendants(job_node[job.id]):
            if x[i] > 0:
                edge_pos.append(len(us))
                edge_node.append(i)
                edge_jid.append(job.id)
                us.append(k)
                vs.append(n_jobs + i)
                caps.append(x[i])
    for i in range(m):
        if x[i] > 0:
            us.append(n_jobs + i)
            vs.append(sink)
            caps.append(instance.g * x[i])
    eids = net.add_edges(us, vs, caps)
    meta = ([eids[p] for p in edge_pos], edge_node, edge_jid)
    return net, meta, source, sink


def node_prober(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    *,
    backend: str | None = None,
):
    """Reusable Lemma 4.1 prober: build the node network once, probe many x̃.

    Returns an object with ``probe(x) -> bool`` (see
    :mod:`repro.flow.incremental`); repeated probes over the same
    instance/forest warm-start from the previous flow instead of
    rebuilding the network.
    """
    from repro.flow.incremental import make_prober

    buckets: list[list[int]] = [[] for _ in range(forest.m)]
    for k, job in enumerate(instance.jobs):
        for i in forest.descendants(job_node[job.id]):
            buckets[i].append(k)
    return make_prober(
        [job.processing for job in instance.jobs],
        buckets,
        instance.g,
        backend=backend,
    )


def node_feasible(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    x: Sequence[int],
) -> bool:
    """Is the per-node open-slot vector ``x`` feasible (Lemma 4.1)?

    One-shot convenience over :func:`node_prober`; callers that test
    many vectors on one forest should hold a prober instead.
    """
    if instance.n == 0:
        return True
    return node_prober(instance, forest, job_node).probe(list(x))


def node_assignment(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    x: Sequence[int],
) -> dict[tuple[int, int], int] | None:
    """Integral per-(node, job) units ``y(i, j)``, or ``None`` if infeasible."""
    if instance.n == 0:
        return {}
    net, (eids, nodes, jids), s, t = _node_network(
        instance, forest, job_node, x
    )
    if net.max_flow(s, t) != instance.total_volume:
        return None
    eid_arr = np.asarray(eids, dtype=np.int64)
    icap = np.asarray(net._initial_cap, dtype=float)
    cap = np.asarray(net.cap, dtype=float)
    flows = icap[eid_arr] - cap[eid_arr] if eid_arr.size else np.zeros(0)
    return {
        (nodes[k], jids[k]): int(round(float(flows[k])))
        for k in np.flatnonzero(flows > 0.5).tolist()
    }
