"""Vectorized max-flow kernel on CSR adjacency arrays.

:class:`CSRMaxFlow` keeps the exact :class:`~repro.flow.dinic.MaxFlow`
contract — same edge ids, same misuse guards, same repair-friendly
``cap``/``_initial_cap`` arrays — but answers :meth:`augment` by handing
the *residual graph* to :func:`scipy.sparse.csgraph.maximum_flow` (a C
implementation of Dinic's with vectorized level/BFS sweeps) instead of
walking Python adjacency lists.  The net pair flows scipy returns are
redistributed onto the individual parallel arcs with a grouped
prefix-sum, so the per-edge residual state stays exactly as expressive
as the object kernel's and :class:`~repro.flow.incremental.IncrementalFlow`
repair works unchanged on top of it.

The flat ``to``/``cap``/``_initial_cap`` arrays are *numpy arrays*
(amortized-growth buffers exposed as length-``m`` views), so bulk edge
appends, the residual snapshot handed to scipy and the post-solve
capacity update are all array operations — no per-augment list↔array
round trips.  The adjacency lists become *lazy*: :meth:`add_edges`
appends to the flat arrays in bulk and only materializes ``head``
(needed by the Python BFS/DFS fallback, min-cut extraction and the
incremental repair walk) on first access.

Kernel selection mirrors the probe-backend machinery in
:mod:`repro.flow.incremental`: :func:`set_flow_kernel` /
``$REPRO_FLOW_KERNEL`` pick between ``"csr"`` (default) and
``"object"`` (the pure-Python reference kernel), and
:func:`flow_network` builds a network on the active kernel.  The
differential probe backend therefore proves old-vs-new kernel agreement
on every probe, exactly as it proved rebuild-vs-repair agreement.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import maximum_flow

from repro.flow.dinic import MaxFlow

#: Environment override for the max-flow kernel (lowest priority).
FLOW_KERNEL_ENV = "REPRO_FLOW_KERNEL"

#: Known kernels: vectorized CSR (scipy Dinic) and the Python reference.
FLOW_KERNELS = ("csr", "object")

DEFAULT_FLOW_KERNEL = "csr"

#: scipy's maximum_flow takes int32 capacities; anything at or above
#: this (or fractional) falls back to the Python kernel transparently.
_CAP_LIMIT = 2**31 - 1

_INTEGRALITY_TOL = 1e-6


class CSRMaxFlow(MaxFlow):
    """:class:`MaxFlow` with a vectorized scipy-Dinic ``augment``.

    Storage, edge ids and every guard are inherited — ``add_edge`` still
    hands out even ids with odd reverses, a second :meth:`max_flow`
    still raises, odd-id :meth:`edge_flow` is still rejected — so the
    two kernels are drop-in interchangeable and the differential
    machinery can compare them probe by probe.
    """

    def __init__(self, n: int) -> None:
        self._head_store: list[list[int]] = []
        self._head_dirty = False
        self._dropped: set[int] = set()
        super().__init__(n)
        # Replace the parent's list storage with growable numpy buffers;
        # ``to``/``cap``/``_initial_cap`` are length-m views into them.
        self._m = 0
        self._to_buf = np.empty(16, dtype=np.int64)
        self._cap_buf = np.empty(16, dtype=float)
        self._icap_buf = np.empty(16, dtype=float)
        self._refresh_views()

    # -- flat-array storage ------------------------------------------------

    def _refresh_views(self) -> None:
        m = self._m
        self.to = self._to_buf[:m]
        self.cap = self._cap_buf[:m]
        self._initial_cap = self._icap_buf[:m]

    def _ensure(self, extra: int) -> None:
        need = self._m + extra
        if need <= self._to_buf.size:
            return
        size = max(need, 2 * self._to_buf.size)
        for name in ("_to_buf", "_cap_buf", "_icap_buf"):
            buf = getattr(self, name)
            grown = np.empty(size, dtype=buf.dtype)
            grown[: self._m] = buf[: self._m]
            setattr(self, name, grown)

    def reset(self) -> None:
        """Restore all capacities (undo any previously computed flow)."""
        self._cap_buf[: self._m] = self._icap_buf[: self._m]
        self._solved = False

    # -- lazy adjacency ----------------------------------------------------

    @property
    def head(self) -> list[list[int]]:
        if self._head_dirty:
            self._rebuild_head()
        return self._head_store

    @head.setter
    def head(self, value: list[list[int]]) -> None:
        self._head_store = value
        self._head_dirty = False

    def _rebuild_head(self) -> None:
        """Rebuild per-node edge lists from the flat arrays.

        Edges are appended in increasing id order, which is exactly the
        order the eager object kernel builds them in, so the rebuilt
        lists (and therefore BFS/DFS tie-breaking) are identical.
        """
        head: list[list[int]] = [[] for _ in range(self.n)]
        to = self.to.tolist()
        dropped = self._dropped
        for eid in range(len(to)):
            if eid in dropped:
                continue
            head[to[eid ^ 1]].append(eid)
        self._head_store = head
        self._head_dirty = False

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge; returns its id (even; reverse id is id+1)."""
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        if self._head_dirty:
            # head[] is appended to mid-edge; rebuild first so the lists
            # are consistent with the flat arrays.
            self._rebuild_head()
        eid = self._m
        self._ensure(2)
        self._to_buf[eid] = v
        self._to_buf[eid + 1] = u
        self._cap_buf[eid] = capacity
        self._cap_buf[eid + 1] = 0.0
        self._icap_buf[eid] = capacity
        self._icap_buf[eid + 1] = 0.0
        self._m += 2
        self._refresh_views()
        self._head_store[u].append(eid)
        self._head_store[v].append(eid + 1)
        return eid

    def add_edges(
        self,
        us: Sequence[int],
        vs: Sequence[int],
        caps: Sequence[float],
    ) -> list[int]:
        """Bulk :meth:`add_edge`: append all arcs without touching ``head``."""
        caps_arr = np.asarray(caps, dtype=float)
        if caps_arr.size and float(caps_arr.min()) < 0:
            bad = float(caps_arr[caps_arr < 0][0])
            raise ValueError(f"negative capacity {bad}")
        k = len(caps_arr)
        if len(us) != k or len(vs) != k:
            raise ValueError("us/vs/caps length mismatch")
        if k == 0:
            return []
        base = self._m
        stop = base + 2 * k
        self._ensure(2 * k)
        self._to_buf[base:stop:2] = vs
        self._to_buf[base + 1 : stop : 2] = us
        self._cap_buf[base:stop:2] = caps_arr
        self._cap_buf[base + 1 : stop : 2] = 0.0
        self._icap_buf[base:stop:2] = caps_arr
        self._icap_buf[base + 1 : stop : 2] = 0.0
        self._m = stop
        self._refresh_views()
        self._head_dirty = True
        return list(range(base, stop, 2))

    def drop_edge(self, eid: int) -> None:
        super().drop_edge(eid)
        self._dropped.add(eid)
        self._dropped.add(eid ^ 1)

    # -- vectorized augmentation -------------------------------------------

    def augment(self, s: int, t: int) -> float:
        """Max-flow on the current residual network via scipy's C Dinic.

        Semantically identical to :meth:`MaxFlow.augment` (returns the
        increment, counts augmenting paths, leaves a valid residual
        state); falls back to the Python kernel for fractional or
        oversized capacities, which scipy's int32 solver cannot take.
        """
        if s == t:
            raise ValueError("source equals sink")
        cap = self.cap  # float64 view into the growth buffer
        if cap.size == 0:
            self._solved = True
            return 0.0
        cap_int = np.rint(cap)
        if (
            float(np.abs(cap - cap_int).max()) > _INTEGRALITY_TOL
            or float(cap_int.max()) >= _CAP_LIMIT
        ):
            return MaxFlow.augment(self, s, t)
        self._solved = True
        live = cap_int > 0
        if self._dropped:
            live[np.fromiter(self._dropped, dtype=np.int64)] = False
        arcs = np.flatnonzero(live)
        if arcs.size == 0:
            return 0.0
        to = self.to
        heads = to[arcs]
        tails = to[arcs ^ 1]
        arc_caps = cap_int[arcs].astype(np.int64)
        # Parallel residual arcs between the same node pair are summed by
        # the CSR constructor; the per-arc split is recovered below.
        graph = csr_matrix(
            (arc_caps.astype(np.int32), (tails, heads)),
            shape=(self.n, self.n),
        )
        result = maximum_flow(graph, s, t)
        pushed = int(result.flow_value)
        if pushed == 0:
            return 0.0
        # flow is CSR, so its COO triples come out row-major sorted — the
        # (row·n + col) pair keys below are already ascending.
        coo = result.flow.tocoo()
        positive = coo.data > 0
        pair_keys = (
            coo.row[positive].astype(np.int64) * self.n
            + coo.col[positive].astype(np.int64)
        )
        pair_vals = coo.data[positive].astype(np.int64)
        if pair_keys.size > 1 and np.any(pair_keys[1:] < pair_keys[:-1]):
            key_order = np.argsort(pair_keys)
            pair_keys = pair_keys[key_order]
            pair_vals = pair_vals[key_order]
        # One "augmenting path" per distinct flow-carrying arc out of the
        # source: the minimum number of paths any decomposition of this
        # increment needs, and what the object kernel reports for the
        # layered networks this library builds.
        self.augment_paths += int(
            np.count_nonzero(coo.row[positive] == s)
        )

        # Redistribute each pair's net flow onto its arcs: restrict to
        # arcs whose pair actually carries flow, sort those by (pair,
        # id), then take from each arc up to its capacity until the
        # pair's flow is exhausted (grouped exclusive prefix sum).
        arc_pairs = tails * self.n + heads
        lookup = np.searchsorted(pair_keys, arc_pairs)
        clipped = np.minimum(lookup, pair_keys.size - 1)
        sel = np.flatnonzero(pair_keys[clipped] == arc_pairs)
        order = np.lexsort((arcs[sel], arc_pairs[sel]))
        s_arcs = arcs[sel][order]
        s_pairs = arc_pairs[sel][order]
        s_caps = arc_caps[sel][order]
        group_flow = pair_vals[clipped[sel][order]]
        first = np.empty(s_pairs.size, dtype=bool)
        first[0] = True
        first[1:] = s_pairs[1:] != s_pairs[:-1]
        exclusive = np.cumsum(s_caps) - s_caps
        group_base = exclusive[np.flatnonzero(first)]
        prior = exclusive - group_base[np.cumsum(first) - 1]
        take = np.clip(group_flow - prior, 0, s_caps)
        taking = np.flatnonzero(take)
        if taking.size:
            arcs_taking = s_arcs[taking]
            units = take[taking].astype(float)
            cap[arcs_taking] -= units
            cap[arcs_taking ^ 1] += units
        return float(pushed)


# ---------------------------------------------------------------------------
# Kernel selection
# ---------------------------------------------------------------------------

_KERNEL_OVERRIDE: str | None = None

_KERNEL_CLASSES = {"csr": CSRMaxFlow, "object": MaxFlow}


def get_flow_kernel() -> str:
    """The active max-flow kernel: override > environment > default."""
    if _KERNEL_OVERRIDE is not None:
        return _KERNEL_OVERRIDE
    env = os.environ.get(FLOW_KERNEL_ENV)
    if env:
        name = env.strip().lower()
        if name not in FLOW_KERNELS:
            raise ValueError(
                f"${FLOW_KERNEL_ENV}={env!r} is not one of {FLOW_KERNELS}"
            )
        return name
    return DEFAULT_FLOW_KERNEL


def set_flow_kernel(name: str | None) -> str | None:
    """Pin the max-flow kernel process-wide; returns the previous override.

    ``None`` clears the pin (environment/default apply again)::

        previous = set_flow_kernel("object")
        try:
            ...
        finally:
            set_flow_kernel(previous)
    """
    global _KERNEL_OVERRIDE
    if name is not None and name not in FLOW_KERNELS:
        raise ValueError(f"kernel {name!r} not one of {FLOW_KERNELS}")
    previous = _KERNEL_OVERRIDE
    _KERNEL_OVERRIDE = name
    return previous


def flow_network(n: int, *, kernel: str | None = None) -> MaxFlow:
    """A fresh max-flow network on the requested (or active) kernel."""
    name = kernel or get_flow_kernel()
    try:
        cls = _KERNEL_CLASSES[name]
    except KeyError:
        raise ValueError(f"kernel {name!r} not one of {FLOW_KERNELS}") from None
    return cls(n)
