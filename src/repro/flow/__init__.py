"""Max-flow substrate and flow-based feasibility tests."""

from repro.flow.assignment import schedule_from_node_counts, spread_units
from repro.flow.dinic import MaxFlow
from repro.flow.feasibility import (
    all_slots_feasible,
    extract_schedule,
    node_assignment,
    node_feasible,
    slot_feasible,
)

__all__ = [
    "MaxFlow",
    "slot_feasible",
    "extract_schedule",
    "all_slots_feasible",
    "node_feasible",
    "node_assignment",
    "spread_units",
    "schedule_from_node_counts",
]
