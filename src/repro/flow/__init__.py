"""Max-flow substrate and flow-based feasibility tests."""

from repro.flow.assignment import schedule_from_node_counts, spread_units
from repro.flow.csr import (
    FLOW_KERNELS,
    CSRMaxFlow,
    flow_network,
    get_flow_kernel,
    set_flow_kernel,
)
from repro.flow.dinic import MaxFlow
from repro.flow.feasibility import (
    all_slots_feasible,
    extract_schedule,
    node_assignment,
    node_feasible,
    node_prober,
    slot_feasible,
)
from repro.flow.incremental import (
    FLOW_BACKENDS,
    ClassFlowProber,
    DifferentialFlowProber,
    DynamicFlowProber,
    FlowMismatchError,
    IncrementalFlow,
    ReferenceFlowProber,
    flow_stats,
    flow_stats_delta,
    get_flow_backend,
    make_prober,
    render_flow_stats,
    reset_flow_stats,
    set_flow_backend,
)

__all__ = [
    "MaxFlow",
    "CSRMaxFlow",
    "FLOW_KERNELS",
    "flow_network",
    "get_flow_kernel",
    "set_flow_kernel",
    "slot_feasible",
    "extract_schedule",
    "all_slots_feasible",
    "node_feasible",
    "node_assignment",
    "node_prober",
    "spread_units",
    "schedule_from_node_counts",
    "IncrementalFlow",
    "ClassFlowProber",
    "DynamicFlowProber",
    "ReferenceFlowProber",
    "DifferentialFlowProber",
    "FlowMismatchError",
    "FLOW_BACKENDS",
    "make_prober",
    "get_flow_backend",
    "set_flow_backend",
    "flow_stats",
    "flow_stats_delta",
    "reset_flow_stats",
    "render_flow_stats",
]
