"""Dinic's maximum-flow algorithm, implemented from scratch.

The feasibility theory of the paper (Section 1 and Lemma 4.1) reduces
schedulability to max-flow computations on small layered networks, so this
is the workhorse substrate of the library.  Capacities are integers;
Dinic's returns integral flows, which is what schedule extraction needs.

The implementation uses flat arrays (struct-of-arrays) rather than edge
objects: BFS level graph + DFS blocking flow with the standard ``it[]``
current-arc optimization.  Complexity ``O(V^2 E)`` in general, ``O(E sqrt(V))``
on the unit-ish bipartite networks we build.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable


class MaxFlow:
    """A max-flow network over nodes ``0..n-1``.

    Edges are added with :meth:`add_edge`; reverse edges are created
    automatically with zero capacity.  After :meth:`max_flow`, per-edge
    flow is available through :meth:`edge_flow` / :meth:`flows`.

    :meth:`max_flow` is a one-shot, from-scratch solve: calling it a
    second time without :meth:`reset` is an error (it would return only
    the residual increment, a classic silent-misuse bug).  Callers that
    *want* warm-started re-augmentation — the incremental engine in
    :mod:`repro.flow.incremental` — use :meth:`augment`, which is
    explicitly documented to return the increment.
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("network needs at least source and sink")
        self.n = n
        self.head: list[list[int]] = [[] for _ in range(n)]  # node -> edge ids
        self.to: list[int] = []
        self.cap: list[float] = []
        self._initial_cap: list[float] = []
        self._solved = False
        self.augment_paths = 0  # lifetime count of augmenting paths pushed

    def add_node(self) -> int:
        """Append a fresh isolated node; returns its id.

        Growing the node set never invalidates existing edges, levels are
        rebuilt per BFS, and an isolated node carries no flow — so this is
        safe between solves.  The dynamic networks in
        :mod:`repro.flow.incremental` use it to admit jobs after
        construction.
        """
        self.head.append([])
        self.n += 1
        return self.n - 1

    def drop_edge(self, eid: int) -> None:
        """Detach a flow-free edge from the adjacency lists.

        The edge (and its reverse) stops participating in BFS/DFS scans;
        its id stays allocated, so other edge ids remain valid.  Only a
        flow-free edge may be dropped — detaching an edge that still
        carries flow would break conservation at both endpoints.  Long-
        lived incremental networks use this to shed dead structure
        (cancelled jobs, frozen slots) so search cost tracks the *live*
        network, not everything ever added.
        """
        if eid & 1:
            raise ValueError(
                f"edge id {eid} is a reverse edge; drop_edge() takes the "
                f"even id returned by add_edge()"
            )
        if self.cap[eid] != self._initial_cap[eid] or self.cap[eid ^ 1] != 0:
            raise ValueError(f"edge {eid} still carries flow; cancel it first")
        u = self.to[eid ^ 1]
        v = self.to[eid]
        self.head[u].remove(eid)
        self.head[v].remove(eid ^ 1)

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge; returns its id (even; reverse id is id+1)."""
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        eid = len(self.to)
        self.to.append(v)
        self.cap.append(capacity)
        self._initial_cap.append(capacity)
        self.head[u].append(eid)
        self.to.append(u)
        self.cap.append(0.0)
        self._initial_cap.append(0.0)
        self.head[v].append(eid + 1)
        return eid

    def add_edges(
        self,
        us: Iterable[int],
        vs: Iterable[int],
        caps: Iterable[float],
    ) -> list[int]:
        """Bulk :meth:`add_edge`; returns the even ids, in order.

        Semantically a plain loop here; the CSR kernel
        (:class:`repro.flow.csr.CSRMaxFlow`) overrides it with a
        vectorized append that defers adjacency-list construction, so
        builders that batch their edges are fast on both kernels.
        """
        return [self.add_edge(u, v, c) for u, v, c in zip(us, vs, caps)]

    def reset(self) -> None:
        """Restore all capacities (undo any previously computed flow)."""
        self.cap = list(self._initial_cap)
        self._solved = False

    def _bfs(self, s: int, t: int, level: list[int]) -> bool:
        level[:] = [-1] * self.n
        level[s] = 0
        q = deque([s])
        to, cap = self.to, self.cap
        while q:
            u = q.popleft()
            for eid in self.head[u]:
                v = to[eid]
                if cap[eid] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    q.append(v)
        return level[t] >= 0

    def _dfs(self, s: int, t: int, level: list[int], it: list[int]) -> float:
        """Iterative blocking-flow DFS pushing one augmenting path."""
        to, cap, head = self.to, self.cap, self.head
        path: list[int] = []  # edge ids along current path
        u = s
        while True:
            if u == t:
                bottleneck = min(cap[eid] for eid in path)
                for eid in path:
                    cap[eid] -= bottleneck
                    cap[eid ^ 1] += bottleneck
                return bottleneck
            advanced = False
            while it[u] < len(head[u]):
                eid = head[u][it[u]]
                v = to[eid]
                if cap[eid] > 0 and level[v] == level[u] + 1:
                    path.append(eid)
                    u = v
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            level[u] = -1  # dead end; prune
            if not path:
                return 0.0
            eid = path.pop()
            u = to[eid ^ 1]
            it[u] += 1

    def max_flow(self, s: int, t: int) -> float:
        """Compute the maximum ``s``-``t`` flow value (from-scratch, once).

        Raises
        ------
        RuntimeError
            If called again without an intervening :meth:`reset` — the
            second call would silently return only the residual
            increment, not the flow value.  Use :meth:`augment` when
            warm-started re-augmentation is actually intended.
        """
        if self._solved:
            raise RuntimeError(
                "max_flow() already ran on this network; call reset() for "
                "a fresh solve, or augment() if you want the warm-started "
                "residual increment"
            )
        return self.augment(s, t)

    def augment(self, s: int, t: int) -> float:
        """Push flow on the *current* residual network to a maximum.

        Returns the increment added by this call (0.0 when the flow is
        already maximum).  This is the warm-start entry point used by
        :class:`repro.flow.incremental.IncrementalFlow` after capacity
        mutations; fresh one-shot solves should call :meth:`max_flow`.
        """
        if s == t:
            raise ValueError("source equals sink")
        self._solved = True
        total = 0.0
        level = [-1] * self.n
        while self._bfs(s, t, level):
            it = [0] * self.n
            while True:
                pushed = self._dfs(s, t, level, it)
                if pushed == 0:
                    break
                total += pushed
                self.augment_paths += 1
        return total

    # -- flow inspection ---------------------------------------------------

    def edge_flow(self, eid: int) -> float:
        """Flow currently on edge ``eid`` (as returned by :meth:`add_edge`).

        Only the even ids handed out by :meth:`add_edge` are valid: the
        odd reverse ids would return negative garbage (their initial
        capacity is 0), so they are rejected loudly.
        """
        if eid & 1:
            raise ValueError(
                f"edge id {eid} is a reverse edge; edge_flow() takes the "
                f"even id returned by add_edge() (did you mean {eid ^ 1}?)"
            )
        return self._initial_cap[eid] - self.cap[eid]

    def flows(self, edge_ids: Iterable[int]) -> list[float]:
        return [self.edge_flow(e) for e in edge_ids]

    def min_cut_source_side(self, s: int) -> set[int]:
        """Nodes reachable from ``s`` in the residual graph (after max_flow)."""
        seen = {s}
        q = deque([s])
        while q:
            u = q.popleft()
            for eid in self.head[u]:
                v = self.to[eid]
                if self.cap[eid] > 0 and v not in seen:
                    seen.add(v)
                    q.append(v)
        return seen
