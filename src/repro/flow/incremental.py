"""Incremental max-flow engine for warm-started feasibility probing.

Every feasibility decision in the library — greedy deactivation
(Chang–Khuller–Mukherjee minimal feasible sets), branch-and-bound
probing in the exact solver, and the Lemma 4.1 node-level checks —
reduces to the same question on the same three-layer network::

    source --p_j--> job j --c(i)--> bucket i --g*c(i)--> sink

where a *bucket* is a slot class (interchangeable slots with identical
covering-window sets) or a window-tree node, and ``c(i)`` is the number
of open slots in that bucket.  Historically each probe built a fresh
:class:`~repro.flow.dinic.MaxFlow` and re-pushed the full ``Σ p_j``
volume from scratch; the consumers, however, probe *sequences* of count
vectors that differ in one or two buckets per step, so almost all of
that work repeats.

This module keeps one network per (instance, buckets) pair alive across
probes:

* :class:`IncrementalFlow` layers capacity mutation onto ``MaxFlow``.
  :meth:`IncrementalFlow.set_capacity` rebases an edge's capacity; when
  the new capacity is below the flow currently on the edge it *repairs*
  the flow first — the excess is cancelled along residual flow-carrying
  paths (backwards from the edge's tail to the source, forwards from its
  head to the sink), so the invariant *flow ≤ capacity everywhere, flow
  conservation at every internal node* holds after every mutation.
* :class:`ClassFlowProber` drives it at the bucket level: ``probe(counts)``
  diffs the requested counts against the network's current state,
  mutates only the changed buckets, and re-augments just the deficit.
  For a single slot removal at capacity ``g`` the repair cancels at most
  ``g`` units and the re-augmentation pushes at most ``g`` units back —
  independent of ``Σ p_j``.

The from-scratch path stays available as a pinnable *reference backend*
(:func:`set_flow_backend` / ``REPRO_FLOW_BACKEND``), and a *differential
backend* runs both on every probe and raises :class:`FlowMismatchError`
on any disagreement — the fuzz campaigns and the E15 agreement sweep pin
that one.

Instrumentation mirrors the solver service: module-level counters
(networks built, probes answered warm, augmenting paths, units repaired)
are exposed through :func:`flow_stats` and the CLI ``--stats`` flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.flow.csr import flow_network
from repro.flow.dinic import MaxFlow
from repro.util.errors import SolverError

#: Environment override for the probe backend (lowest priority).
FLOW_BACKEND_ENV = "REPRO_FLOW_BACKEND"

#: Known probe backends, in the order the docs list them.
FLOW_BACKENDS = ("incremental", "reference", "differential")

DEFAULT_FLOW_BACKEND = "incremental"


class FlowMismatchError(SolverError):
    """The incremental engine and the reference path disagreed on a probe.

    Raised only under the ``differential`` backend; carries the count
    vector so the failing probe can be replayed in isolation.

    Attributes
    ----------
    counts:
        The probed per-bucket count vector.
    incremental / reference:
        The two verdicts (always differing).
    """

    def __init__(
        self,
        message: str,
        *,
        counts: tuple[int, ...] = (),
        incremental: bool | None = None,
        reference: bool | None = None,
        **kwargs,
    ) -> None:
        kwargs.setdefault("kind", "numerical")
        super().__init__(message, **kwargs)
        self.counts = tuple(counts)
        self.incremental = incremental
        self.reference = reference


# ---------------------------------------------------------------------------
# Instrumentation (solver-service-style module counters)
# ---------------------------------------------------------------------------


@dataclass
class FlowEngineStats:
    """Mutable counters for the incremental flow engine (process-global)."""

    networks_built: int = 0  # incremental networks constructed
    probes: int = 0  # feasibility probes answered by the engine
    rebuilds_avoided: int = 0  # probes answered warm (no fresh network)
    reference_probes: int = 0  # from-scratch probes (reference backend)
    augmenting_paths: int = 0  # paths pushed while re-augmenting
    units_repaired: int = 0  # flow units cancelled by capacity drops
    units_augmented: int = 0  # flow units pushed by re-augmentation

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy, safe to diff across further probes."""
        return {
            "networks_built": self.networks_built,
            "probes": self.probes,
            "rebuilds_avoided": self.rebuilds_avoided,
            "reference_probes": self.reference_probes,
            "augmenting_paths": self.augmenting_paths,
            "units_repaired": self.units_repaired,
            "units_augmented": self.units_augmented,
        }

    def reset(self) -> None:
        self.networks_built = 0
        self.probes = 0
        self.rebuilds_avoided = 0
        self.reference_probes = 0
        self.augmenting_paths = 0
        self.units_repaired = 0
        self.units_augmented = 0


_STATS = FlowEngineStats()


def flow_stats() -> dict[str, int]:
    """Snapshot of the process-global flow engine counters."""
    return _STATS.snapshot()


def reset_flow_stats() -> None:
    """Zero the process-global flow engine counters."""
    _STATS.reset()


def flow_stats_delta(
    after: Mapping[str, int], before: Mapping[str, int]
) -> dict[str, int]:
    """``after - before`` for two :func:`flow_stats` snapshots."""
    return {key: value - before.get(key, 0) for key, value in after.items()}


def render_flow_stats(snap: Mapping[str, Any]) -> str:
    """A compact aligned text block for the CLI ``--stats`` flag."""
    rows = [
        ("networks built", snap.get("networks_built", 0)),
        ("probes", snap.get("probes", 0)),
        ("rebuilds avoided", snap.get("rebuilds_avoided", 0)),
        ("reference probes", snap.get("reference_probes", 0)),
        ("augmenting paths", snap.get("augmenting_paths", 0)),
        ("flow units repaired", snap.get("units_repaired", 0)),
        ("flow units augmented", snap.get("units_augmented", 0)),
    ]
    width = max(len(label) for label, _ in rows)
    lines = ["flow engine stats"]
    for label, value in rows:
        lines.append(f"  {label.ljust(width)}  {value}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------

_BACKEND_OVERRIDE: str | None = None


def get_flow_backend() -> str:
    """The active probe backend: override > environment > default."""
    if _BACKEND_OVERRIDE is not None:
        return _BACKEND_OVERRIDE
    env = os.environ.get(FLOW_BACKEND_ENV)
    if env:
        name = env.strip().lower()
        if name not in FLOW_BACKENDS:
            raise ValueError(
                f"${FLOW_BACKEND_ENV}={env!r} is not one of {FLOW_BACKENDS}"
            )
        return name
    return DEFAULT_FLOW_BACKEND


def set_flow_backend(name: str | None) -> str | None:
    """Pin the probe backend process-wide; returns the previous override.

    ``None`` clears the pin (environment/default apply again).  Typical
    use is a try/finally pair in benchmarks and tests::

        previous = set_flow_backend("reference")
        try:
            ...
        finally:
            set_flow_backend(previous)
    """
    global _BACKEND_OVERRIDE
    if name is not None and name not in FLOW_BACKENDS:
        raise ValueError(f"backend {name!r} not one of {FLOW_BACKENDS}")
    previous = _BACKEND_OVERRIDE
    _BACKEND_OVERRIDE = name
    return previous


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class IncrementalFlow:
    """A :class:`MaxFlow` whose edge capacities may change between solves.

    The wrapped network must be *acyclic* (every network in this library
    is a layered ``s → jobs → buckets → t`` DAG); flow decomposition on a
    DAG has no cycles, so cancelling excess along flow-carrying residual
    paths always terminates and always reaches the source/sink.

    Invariant maintained by every public method: the wrapped network
    holds a valid (not necessarily maximum) ``s``-``t`` flow of value
    :attr:`value`, with ``flow(e) ≤ capacity(e)`` on every edge.
    """

    def __init__(
        self, n: int, source: int, sink: int, *, kernel: str | None = None
    ) -> None:
        self.net = flow_network(n, kernel=kernel)
        self.source = source
        self.sink = sink
        self.value = 0.0
        _STATS.networks_built += 1

    # -- construction ------------------------------------------------------

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add an edge (before or between solves); returns its even id."""
        return self.net.add_edge(u, v, capacity)

    def add_edges(self, us, vs, caps) -> list[int]:
        """Bulk :meth:`add_edge`; returns the even ids, in order."""
        return self.net.add_edges(us, vs, caps)

    def add_node(self) -> int:
        """Append a fresh isolated node (before or between solves)."""
        return self.net.add_node()

    def drop_edge(self, eid: int) -> None:
        """Detach a flow-free edge (see :meth:`MaxFlow.drop_edge`).

        The flow value is untouched — the network refuses to drop an
        edge that still carries flow, so cancel it first with
        :meth:`set_capacity`.
        """
        if eid & 1:
            raise ValueError(f"edge id {eid} is a reverse edge")
        self.net.drop_edge(eid)

    # -- inspection --------------------------------------------------------

    def edge_flow(self, eid: int) -> float:
        return self.net.edge_flow(eid)

    def capacity(self, eid: int) -> float:
        """Current capacity of edge ``eid`` (reflects mutations)."""
        if eid & 1:
            raise ValueError(f"edge id {eid} is a reverse edge")
        return self.net._initial_cap[eid]

    # -- mutation with flow repair ----------------------------------------

    def set_capacity(self, eid: int, capacity: float) -> float:
        """Rebase edge ``eid`` to ``capacity``, repairing flow if needed.

        When the edge currently carries more flow than the new capacity
        allows, the excess is cancelled along residual flow-carrying
        paths through the edge (tail → source backwards, head → sink
        forwards), lowering :attr:`value` by exactly the excess.  Returns
        the number of flow units repaired (0.0 for pure increases).
        """
        if eid & 1:
            raise ValueError(
                f"edge id {eid} is a reverse edge; set_capacity() takes "
                f"the even id returned by add_edge()"
            )
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        net = self.net
        flow = net._initial_cap[eid] - net.cap[eid]
        repaired = 0.0
        if flow > capacity:
            repaired = flow - capacity
            self._cancel_through(eid, repaired)
            flow = capacity
        # Rebase: keep flow, give the edge its new headroom.  The
        # reverse edge's capacity *is* the flow, so it needs no change.
        net._initial_cap[eid] = capacity
        net.cap[eid] = capacity - flow
        return repaired

    def _cancel_through(self, eid: int, excess: float) -> None:
        """Remove ``excess`` units of s-t flow passing through ``eid``."""
        net = self.net
        tail = net.to[eid ^ 1]
        head = net.to[eid]
        remaining = excess
        while remaining > 0:
            back = self._flow_path(tail, self.source, incoming=True)
            fwd = self._flow_path(head, self.sink, incoming=False)
            path = back + [eid] + fwd
            slack = min(
                remaining,
                min(net._initial_cap[e] - net.cap[e] for e in path),
            )
            assert slack > 0, "flow-carrying path with zero slack"
            for e in path:
                net.cap[e] += slack
                net.cap[e ^ 1] -= slack
            remaining -= slack
        self.value -= excess
        _STATS.units_repaired += int(excess)

    def _flow_path(self, start: int, goal: int, *, incoming: bool) -> list[int]:
        """Original-edge ids of a flow-carrying path ``start`` → ``goal``.

        ``incoming=True`` walks *against* the flow (via edges carrying
        flow into each node, toward the source); ``incoming=False`` walks
        *with* it (toward the sink).  Exists by flow conservation; the
        acyclicity precondition bounds the walk by the node count.
        """
        net = self.net
        path: list[int] = []
        node = start
        for _ in range(net.n + 1):
            if node == goal:
                return path
            for eid in net.head[node]:
                if incoming:
                    # Reverse arcs in head[node] are odd; their pair is
                    # an original arc into `node`, carrying flow equal to
                    # the reverse arc's capacity.
                    if eid & 1 and net.cap[eid] > 0:
                        path.append(eid ^ 1)
                        node = net.to[eid]
                        break
                else:
                    if not eid & 1 and net.cap[eid ^ 1] > 0:
                        path.append(eid)
                        node = net.to[eid]
                        break
            else:
                raise SolverError(
                    f"flow conservation violated at node {node} during "
                    f"repair (is the network acyclic?)"
                )
        raise SolverError(
            "flow repair walk exceeded the node count — cyclic flow?"
        )

    # -- solving -----------------------------------------------------------

    def augment(self) -> float:
        """Re-augment to a maximum flow from the current state.

        Returns the increment; :attr:`value` is updated in place.
        """
        before_paths = self.net.augment_paths
        pushed = self.net.augment(self.source, self.sink)
        self.value += pushed
        _STATS.augmenting_paths += self.net.augment_paths - before_paths
        _STATS.units_augmented += int(pushed)
        return pushed


# ---------------------------------------------------------------------------
# Bucket-level probers
# ---------------------------------------------------------------------------


class ClassFlowProber:
    """Warm-started feasibility probes over the three-layer bucket network.

    Drop-in for the from-scratch class-flow test: ``probe(counts)``
    answers "can every job finish inside ``counts[i]`` open slots per
    bucket at machine capacity ``g``?" — but builds the network once and
    repairs/augments between probes instead of rebuilding.
    """

    backend = "incremental"

    def __init__(
        self,
        processings: Sequence[int],
        buckets: Sequence[Sequence[int]],
        g: int,
    ) -> None:
        n_jobs = len(processings)
        self._p = list(processings)
        self.total = sum(processings)
        self.g = g
        source = n_jobs + len(buckets)
        sink = source + 1
        engine = IncrementalFlow(sink + 1, source, sink)
        self._buckets = [list(b) for b in buckets]
        # One bulk append (source edges, then per bucket its job edges
        # and sink edge) — same edge ids as the per-edge loop, but the
        # CSR kernel defers adjacency-list construction entirely.
        us: list[int] = [source] * n_jobs
        vs: list[int] = list(range(n_jobs))
        caps: list[float] = list(processings)
        for ci, bucket in enumerate(self._buckets):
            node = n_jobs + ci
            us.extend(bucket)
            vs.extend([node] * len(bucket))
            caps.extend([0] * len(bucket))
            us.append(node)
            vs.append(sink)
            caps.append(0)
        eids = engine.add_edges(us, vs, caps)
        self._job_edges: list[list[int]] = []
        self._sink_edges: list[int] = []
        at = n_jobs
        for bucket in self._buckets:
            self._job_edges.append(eids[at : at + len(bucket)])
            at += len(bucket)
            self._sink_edges.append(eids[at])
            at += 1
        self._counts = [0] * len(buckets)
        # Cut bookkeeping for O(1) infeasibility rejects: total sink
        # capacity, per-job slot room, and how many jobs lack room.
        self._sink_total = 0
        self._room = [0] * n_jobs
        self._deficient = sum(1 for p in self._p if p > 0)
        self.engine = engine
        self._probed = False

    def probe(self, counts: Sequence[int]) -> bool:
        """Feasibility of the count vector; warm-starts from the last probe."""
        if len(counts) != len(self._counts):
            raise ValueError(
                f"expected {len(self._counts)} bucket counts, "
                f"got {len(counts)}"
            )
        engine = self.engine
        _STATS.probes += 1
        if self._probed:
            _STATS.rebuilds_avoided += 1
        self._probed = True
        room, p = self._room, self._p
        for ci, c in enumerate(counts):
            c = max(0, c)
            dc = c - self._counts[ci]
            if dc == 0:
                continue
            for eid in self._job_edges[ci]:
                engine.set_capacity(eid, c)
            engine.set_capacity(self._sink_edges[ci], self.g * c)
            self._sink_total += self.g * dc
            for k in self._buckets[ci]:
                before = room[k]
                room[k] = before + dc
                if before < p[k] <= room[k]:
                    self._deficient -= 1
                elif room[k] < p[k] <= before:
                    self._deficient += 1
            self._counts[ci] = c
        # Exact cut-based rejects (the reference answers False in both
        # cases too): the sink cut caps the flow at Σ g·c(i); the cut
        # isolating a single job caps it at Σp − p_j + Σ_{i∋j} c(i).
        if self._sink_total < self.total or self._deficient:
            return False
        # Source capacities sum to `total`, so value never exceeds it;
        # when it already matches, the flow is maximum and feasible.
        if engine.value < self.total:
            engine.augment()
        return engine.value == self.total


class DynamicFlowProber:
    """Warm-started job↔slot feasibility network with a *mutable job side*.

    :class:`ClassFlowProber` answers ``probe(counts)`` for a fixed job
    set over fixed buckets; the rescheduling twin
    (:mod:`repro.twin.session`) needs the dual: the open-slot set changes
    one slot at a time *and* the job set itself mutates — jobs arrive,
    cancel, slip their windows, and shrink as executed work is committed.
    This network keeps one bucket per concrete slot::

        source --rem_j--> job j --1--> slot t --g·[open(t)]--> sink

    so every session mutation is a handful of
    :meth:`IncrementalFlow.set_capacity` calls on one long-lived engine:

    * opening/closing a slot touches exactly one slot→sink edge
      (repair cancels ≤ ``g`` units, re-augmentation pushes ≤ ``g``);
    * a job arrival appends one node plus its window edges
      (:meth:`IncrementalFlow.add_node` — no rebuild);
    * a cancellation zeroes the job's source edge (repair cancels its
      remaining volume) and its window edges;
    * committing an executed slot removes its flow and the matching
      source capacity in lock-step, leaving the invariant
      ``value == total`` untouched.

    Feasibility is ``value == total`` after re-augmentation, exactly the
    slot-level reference semantics of
    :func:`repro.flow.feasibility.slot_feasible` on the open slots; the
    twin's differential mode cross-checks every verdict against that
    from-scratch path.
    """

    backend = "incremental"

    def __init__(self, g: int, start: int, end: int) -> None:
        if g < 1:
            raise ValueError(f"capacity g must be >= 1, got {g}")
        if end < start:
            raise ValueError(f"empty slot range [{start},{end})")
        self.g = g
        self.start = start
        self.end = start  # grown below (and on demand) via _ensure_slot
        self.total = 0
        # The twin's workload is add_node/drop_edge-heavy with tiny
        # per-event repairs; the object kernel's eager adjacency lists
        # win there, and pinning it keeps replay flows deterministic.
        engine = IncrementalFlow(2, 0, 1, kernel="object")
        self.engine = engine
        self._slot_node: dict[int, int] = {}
        self._slot_sink: dict[int, int] = {}  # slot -> slot→sink edge id
        self._slot_edges: dict[int, list[tuple[int, int]]] = {}
        self._open: set[int] = set()
        self._committed: set[int] = set()
        self._jobs: dict[int, dict] = {}
        self._probed = False
        for t in range(start, end):
            self._ensure_slot(t)

    # -- slot side ---------------------------------------------------------

    def _ensure_slot(self, t: int) -> int:
        """Node id for slot ``t``, materializing the slot on demand."""
        node = self._slot_node.get(t)
        if node is None:
            if t < self.start:
                raise ValueError(
                    f"slot {t} precedes the network start {self.start}"
                )
            node = self.engine.add_node()
            self._slot_node[t] = node
            self._slot_sink[t] = self.engine.add_edge(node, 1, 0)
            self._slot_edges[t] = []
            self.end = max(self.end, t + 1)
        return node

    def open_slots(self) -> set[int]:
        """The currently open (sink-capacitated) slots."""
        return set(self._open)

    def set_open(self, t: int, is_open: bool) -> None:
        """Open or close slot ``t`` — a single sink-edge mutation."""
        if is_open and t in self._committed:
            raise ValueError(f"slot {t} is committed history; cannot reopen")
        self._ensure_slot(t)
        if is_open == (t in self._open):
            return
        self.engine.set_capacity(self._slot_sink[t], self.g if is_open else 0)
        (self._open.add if is_open else self._open.discard)(t)

    # -- job side ----------------------------------------------------------

    def add_job(
        self, handle: int, remaining: int, release: int, deadline: int
    ) -> None:
        """Admit a job node with ``remaining`` units and window ``[r, d)``."""
        if handle in self._jobs:
            raise ValueError(f"job handle {handle} already present")
        if remaining < 0:
            raise ValueError(f"negative remaining work {remaining}")
        node = self.engine.add_node()
        source_eid = self.engine.add_edge(0, node, remaining)
        record = {
            "node": node,
            "source": source_eid,
            "remaining": remaining,
            "window": (release, deadline),
            "edges": {},
        }
        self._jobs[handle] = record
        self.total += remaining
        self._set_window_edges(handle, release, deadline)

    def _set_window_edges(self, handle: int, release: int, deadline: int) -> None:
        record = self._jobs[handle]
        edges: dict[int, int] = record["edges"]
        for t, eid in edges.items():
            inside = release <= t < deadline
            if self.engine.capacity(eid) != (1 if inside else 0):
                self.engine.set_capacity(eid, 1 if inside else 0)
        for t in range(release, deadline):
            if t not in edges and t not in self._committed:
                node = self._ensure_slot(t)
                eid = self.engine.add_edge(record["node"], node, 1)
                edges[t] = eid
                self._slot_edges[t].append((handle, eid))
        record["window"] = (release, deadline)

    def set_window(self, handle: int, release: int, deadline: int) -> None:
        """Move/resize a job's window (slips repair any stranded flow)."""
        self._set_window_edges(handle, release, deadline)

    def set_remaining(self, handle: int, remaining: int) -> None:
        """Rebase a job's outstanding volume (source-edge capacity)."""
        if remaining < 0:
            raise ValueError(f"negative remaining work {remaining}")
        record = self._jobs[handle]
        self.engine.set_capacity(record["source"], remaining)
        self.total += remaining - record["remaining"]
        record["remaining"] = remaining

    def remove_job(self, handle: int) -> None:
        """Cancel a job: repair away its flow and detach it entirely.

        Zeroing the source edge cancels the job's volume; each window
        edge is then flow-free and physically dropped from the adjacency
        lists, so the node is isolated and later probes never scan it —
        the live network tracks the live job set.
        """
        record = self._jobs[handle]
        self.set_remaining(handle, 0)
        for t, eid in record["edges"].items():
            if self.engine.capacity(eid) != 0:
                self.engine.set_capacity(eid, 0)
            self.engine.drop_edge(eid)
            self._slot_edges[t].remove((handle, eid))
        self.engine.drop_edge(record["source"])
        del self._jobs[handle]

    def jobs(self) -> list[int]:
        """Handles of the jobs currently in the network."""
        return sorted(self._jobs)

    def remaining(self, handle: int) -> int:
        return self._jobs[handle]["remaining"]

    def window(self, handle: int) -> tuple[int, int]:
        return self._jobs[handle]["window"]

    # -- committing executed work -----------------------------------------

    def commit_slot(self, t: int) -> list[int]:
        """Execute the current plan at slot ``t`` and freeze the slot.

        Returns the handles that ran (one unit each, per the current
        flow), closes the slot permanently, and decrements the runners'
        remaining volume so ``value == total`` is preserved — committing
        never needs a re-augmentation.
        """
        if t in self._committed:
            raise ValueError(f"slot {t} already committed")
        ran = self.slot_jobs(t)
        self.set_open(t, False)  # cancels exactly the flow through t
        self._committed.add(t)
        for handle in ran:
            self.set_remaining(handle, self._jobs[handle]["remaining"] - 1)
        # Frozen slots never carry flow again: detach the slot's edges so
        # probes over the rest of the session stop scanning them.
        for handle, eid in self._slot_edges[t]:
            if self.engine.capacity(eid) != 0:
                self.engine.set_capacity(eid, 0)
            self.engine.drop_edge(eid)
            del self._jobs[handle]["edges"][t]
        self._slot_edges[t] = []
        self.engine.drop_edge(self._slot_sink[t])
        return ran

    # -- probing and extraction -------------------------------------------

    def probe(self) -> bool:
        """Feasibility of the current (jobs, windows, open slots) state."""
        _STATS.probes += 1
        if self._probed:
            _STATS.rebuilds_avoided += 1
        self._probed = True
        engine = self.engine
        if engine.value < self.total:
            engine.augment()
        return engine.value == self.total

    def job_slots(self, handle: int) -> list[int]:
        """Slots the current flow assigns to ``handle``, sorted."""
        record = self._jobs[handle]
        # Hot path (read once per job per event by the twin): read the
        # flow straight off the arrays instead of through two wrappers.
        net = self.engine.net
        icap, cap = net._initial_cap, net.cap
        return sorted(
            t for t, eid in record["edges"].items()
            if icap[eid] - cap[eid] > 0.5
        )

    def slot_jobs(self, t: int) -> list[int]:
        """Handles the current flow runs at slot ``t``, sorted."""
        net = self.engine.net
        icap, cap = net._initial_cap, net.cap
        return sorted(
            handle
            for handle, eid in self._slot_edges.get(t, ())
            if icap[eid] - cap[eid] > 0.5
        )

    def assignment(self) -> dict[int, list[int]]:
        """Per-job slot lists of the current flow (valid after a True probe)."""
        return {handle: self.job_slots(handle) for handle in self._jobs}


class ReferenceFlowProber:
    """The pre-engine behaviour: fresh network + from-scratch solve."""

    backend = "reference"

    def __init__(
        self,
        processings: Sequence[int],
        buckets: Sequence[Sequence[int]],
        g: int,
    ) -> None:
        self.processings = list(processings)
        self.buckets = [list(b) for b in buckets]
        self.g = g
        self.total = sum(processings)

    def probe(self, counts: Sequence[int]) -> bool:
        _STATS.reference_probes += 1
        return reference_probe(
            self.processings, self.buckets, self.g, counts
        )


class DifferentialFlowProber:
    """Run *both* probers on every probe; scream on any disagreement.

    The fuzz campaigns and the E15 agreement sweep pin this backend so a
    flow-repair bug can never hide behind a plausible verdict.
    """

    backend = "differential"

    def __init__(
        self,
        processings: Sequence[int],
        buckets: Sequence[Sequence[int]],
        g: int,
    ) -> None:
        self.incremental = ClassFlowProber(processings, buckets, g)
        self.reference = ReferenceFlowProber(processings, buckets, g)
        self.probes = 0

    def probe(self, counts: Sequence[int]) -> bool:
        fast = self.incremental.probe(counts)
        slow = self.reference.probe(counts)
        self.probes += 1
        if fast != slow:
            raise FlowMismatchError(
                f"incremental={fast} vs reference={slow} on counts "
                f"{tuple(counts)} (g={self.reference.g})",
                counts=tuple(counts),
                incremental=fast,
                reference=slow,
            )
        return fast


def reference_probe(
    processings: Sequence[int],
    buckets: Sequence[Sequence[int]],
    g: int,
    counts: Sequence[int],
) -> bool:
    """One from-scratch feasibility test (the Lemma 4.1 aggregation).

    This *is* the reference semantics the incremental engine must match:
    buckets with a non-positive count contribute no edges at all.
    """
    n_jobs = len(processings)
    source = n_jobs + len(buckets)
    sink = source + 1
    net = MaxFlow(sink + 1)
    total = 0
    for k, p in enumerate(processings):
        net.add_edge(source, k, p)
        total += p
    for ci, bucket in enumerate(buckets):
        if counts[ci] <= 0:
            continue
        node = n_jobs + ci
        for k in bucket:
            net.add_edge(k, node, counts[ci])
        net.add_edge(node, sink, g * counts[ci])
    return net.max_flow(source, sink) == total


_PROBERS = {
    "incremental": ClassFlowProber,
    "reference": ReferenceFlowProber,
    "differential": DifferentialFlowProber,
}


def make_prober(
    processings: Sequence[int],
    buckets: Sequence[Sequence[int]],
    g: int,
    *,
    backend: str | None = None,
):
    """Build a feasibility prober for the given bucket network.

    ``backend`` overrides the process-wide selection (see
    :func:`set_flow_backend`); ``None`` uses the active backend.
    """
    name = backend or get_flow_backend()
    try:
        cls = _PROBERS[name]
    except KeyError:
        raise ValueError(
            f"backend {name!r} not one of {FLOW_BACKENDS}"
        ) from None
    return cls(processings, buckets, g)
