"""Turning node-level assignments into concrete slot schedules.

Within one tree node, any ``x`` open slots of its exclusive region are
interchangeable, so a node-level assignment ``y(i, j)`` (with
``y(i, j) ≤ x(i)`` and ``Σ_j y(i, j) ≤ g·x(i)``) always decomposes into a
per-slot schedule.  The decomposition is the classic *wrap-around rule*
(McNaughton-style): lay all units out in one long row-major ribbon over the
``x`` slots; each job occupies at most ``x`` consecutive ribbon cells, so it
never repeats a slot, and no slot exceeds ``⌈total/x⌉ ≤ g`` jobs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.instances.jobs import Instance
from repro.tree.node import WindowForest
from repro.util.errors import SolverError


def spread_units(
    units: Mapping[int, int], slots: Sequence[int], capacity: int
) -> dict[int, list[int]]:
    """Assign ``units[j]`` slot-units per job onto ``slots`` (wrap-around).

    Parameters
    ----------
    units:
        Job id → number of units to place (each unit on a distinct slot).
    slots:
        The concrete open slots of one node.
    capacity:
        Per-slot job limit ``g``.

    Returns
    -------
    Job id → list of slots.

    Raises
    ------
    SolverError
        If the load conditions ``units[j] ≤ len(slots)`` or
        ``Σ units ≤ g·len(slots)`` fail (caller bug).
    """
    x = len(slots)
    total = sum(units.values())
    if total == 0:
        return {j: [] for j in units}
    if x == 0:
        raise SolverError("units to place but no open slots")
    if total > capacity * x:
        raise SolverError(f"load {total} exceeds capacity {capacity}*{x}")
    out: dict[int, list[int]] = {}
    cursor = 0
    for jid in sorted(units):
        k = units[jid]
        if k > x:
            raise SolverError(f"job {jid} needs {k} units but only {x} slots")
        out[jid] = [slots[(cursor + step) % x] for step in range(k)]
        cursor += k
    return out


def schedule_from_node_counts(
    instance: Instance,
    forest: WindowForest,
    job_node: Mapping[int, int],
    x: Sequence[int],
    y: Mapping[tuple[int, int], int],
) -> Schedule:
    """Build a full schedule from node open-counts ``x`` and units ``y``.

    ``y[(i, j)]`` gives the units of job ``j`` placed in node ``i`` (e.g.
    from :func:`repro.flow.feasibility.node_assignment`).  Each node's units
    are spread over the first ``x(i)`` slots of its exclusive region.
    """
    per_node: dict[int, dict[int, int]] = {}
    for (i, jid), amount in y.items():
        if amount > 0:
            per_node.setdefault(i, {})[jid] = amount

    assignment: dict[int, list[int]] = {j.id: [] for j in instance.jobs}
    for i, units in per_node.items():
        open_slots = forest.exclusive_slots(i)[: int(x[i])]
        placed = spread_units(units, open_slots, instance.g)
        for jid, slots in placed.items():
            assignment[jid].extend(slots)
    return Schedule.from_assignment(instance, assignment)
