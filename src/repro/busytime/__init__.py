"""Busy-time scheduling (related work: non-preemptive, machine pool)."""

from repro.busytime.algorithms import exact_busy_time, first_fit_decreasing
from repro.busytime.model import (
    BusyAssignment,
    BusyTimeInstance,
    IntervalJob,
)

__all__ = [
    "IntervalJob",
    "BusyTimeInstance",
    "BusyAssignment",
    "first_fit_decreasing",
    "exact_busy_time",
]
