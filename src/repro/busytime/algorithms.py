"""Busy-time heuristics and exact reference.

* :func:`first_fit_decreasing` — the classic greedy the busy-time
  literature builds on: sort jobs by length (longest first), place each
  on the machine whose busy time grows the least among those with
  capacity, opening a new machine when none fits.  Constant-factor
  approximate on interval instances (Flammini et al. analyze a variant at
  factor 4); we verify the measured factor against ``max(span, load)``.
* :func:`exact_busy_time` — brute force over machine assignments for tiny
  instances (used to validate the greedy in tests).
"""

from __future__ import annotations


from repro.busytime.model import (
    BusyAssignment,
    BusyTimeInstance,
    IntervalJob,
)
from repro.util.intervals import union_length


def _fits(members: list[IntervalJob], job: IntervalJob, g: int) -> bool:
    """Would adding ``job`` keep the machine within capacity everywhere?"""
    overlapping = [j for j in members if j.interval.overlaps(job.interval)]
    if len(overlapping) < g:
        return True
    # Need an exact sweep: count concurrency over job's interval.
    events: list[tuple[int, int]] = [(job.start, 1), (job.end, -1)]
    for j in overlapping:
        events.append((max(j.start, job.start), 1))
        events.append((min(j.end, job.end), -1))
    events.sort()
    load = 0
    for _, delta in events:
        load += delta
        if load > g:
            return False
    return True


def _growth(members: list[IntervalJob], job: IntervalJob) -> int:
    """Busy-time increase if ``job`` joins the machine."""
    before = union_length([j.interval for j in members])
    after = union_length([j.interval for j in members] + [job.interval])
    return after - before


def first_fit_decreasing(instance: BusyTimeInstance) -> BusyAssignment:
    """Longest-first greedy with best-fit (minimal busy-time growth)."""
    machines: list[list[IntervalJob]] = []
    machine_of: dict[int, int] = {}
    for job in sorted(instance.jobs, key=lambda j: (-j.length, j.start, j.id)):
        best, best_growth = None, None
        for m, members in enumerate(machines):
            if _fits(members, job, instance.g):
                growth = _growth(members, job)
                if best_growth is None or growth < best_growth:
                    best, best_growth = m, growth
        if best is None:
            machines.append([job])
            machine_of[job.id] = len(machines) - 1
        else:
            machines[best].append(job)
            machine_of[job.id] = best
    return BusyAssignment(instance=instance, machine_of=machine_of)


def exact_busy_time(instance: BusyTimeInstance, *, max_jobs: int = 9) -> int:
    """Optimal busy time by enumerating machine assignments (tiny only).

    Machines are symmetric, so assignments are enumerated in restricted-
    growth form (job ``k`` may open machine ``max+1`` at most).
    """
    n = instance.n
    if n == 0:
        return 0
    if n > max_jobs:
        raise ValueError(f"exact busy time capped at {max_jobs} jobs")
    jobs = instance.jobs
    best = None
    # Restricted growth strings to avoid machine-permutation blowup.
    def rec(idx: int, assignment: list[int], used: int):
        nonlocal best
        if idx == n:
            ba = BusyAssignment(
                instance=instance,
                machine_of={jobs[k].id: assignment[k] for k in range(n)},
            )
            if ba.is_valid:
                cost = ba.busy_time
                if best is None or cost < best:
                    best = cost
            return
        for m in range(used + 1):
            assignment.append(m)
            rec(idx + 1, assignment, max(used, m + 1))
            assignment.pop()

    rec(0, [], 0)
    if best is None:
        raise AssertionError("some assignment must be valid (enough machines)")
    return best
