"""The busy-time problem (related work, [5]/[8] in the paper).

Jobs are *non-preemptible fixed intervals*; machines have capacity ``g``
(at most ``g`` jobs simultaneously); a machine is *busy* over the union of
its jobs' intervals; minimize the total busy time over all machines (an
unbounded pool).  The paper cites this as the harder sibling of active
time — even feasibility for a fixed machine count is NP-hard — and we
implement the classic interval version used by the cited works: each job
is an interval ``[s_j, e_j)`` that must run exactly there.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Mapping

from repro.util.errors import InvalidInstanceError
from repro.util.intervals import Interval, union_length


@dataclass(frozen=True)
class IntervalJob:
    """A rigid job occupying exactly ``[start, end)``."""

    id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise InvalidInstanceError(f"job {self.id}: empty interval")

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class BusyTimeInstance:
    """Busy-time instance: rigid interval jobs plus machine capacity."""

    jobs: tuple[IntervalJob, ...]
    g: int
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.g, int) or self.g < 1:
            raise InvalidInstanceError(f"bad capacity {self.g!r}")
        seen: set[int] = set()
        for job in self.jobs:
            if job.id in seen:
                raise InvalidInstanceError(f"duplicate job id {job.id}")
            seen.add(job.id)

    def __iter__(self) -> Iterator[IntervalJob]:
        return iter(self.jobs)

    @property
    def n(self) -> int:
        return len(self.jobs)

    @cached_property
    def span_lower_bound(self) -> int:
        """Busy time of one infinite-capacity machine (the span bound)."""
        return union_length([j.interval for j in self.jobs])

    @cached_property
    def load_lower_bound(self) -> float:
        """Total work divided by capacity (the load bound)."""
        return sum(j.length for j in self.jobs) / self.g

    def lower_bound(self) -> float:
        """max(span, load) — the standard busy-time LB both cited
        approximations are analyzed against."""
        return max(float(self.span_lower_bound), self.load_lower_bound)

    @staticmethod
    def from_pairs(
        pairs: Iterable[tuple[int, int]], g: int, name: str = ""
    ) -> "BusyTimeInstance":
        jobs = tuple(
            IntervalJob(id=k, start=a, end=b) for k, (a, b) in enumerate(pairs)
        )
        return BusyTimeInstance(jobs=jobs, g=g, name=name)


@dataclass(frozen=True)
class BusyAssignment:
    """Jobs → machine index; cost = Σ per-machine union lengths."""

    instance: BusyTimeInstance
    machine_of: Mapping[int, int]

    def machines(self) -> dict[int, list[IntervalJob]]:
        out: dict[int, list[IntervalJob]] = {}
        jobs = {j.id: j for j in self.instance.jobs}
        for jid, m in self.machine_of.items():
            out.setdefault(m, []).append(jobs[jid])
        return out

    @property
    def busy_time(self) -> int:
        return sum(
            union_length([j.interval for j in members])
            for members in self.machines().values()
        )

    def violations(self) -> list[str]:
        """Check capacity on every machine and that every job is placed."""
        problems: list[str] = []
        placed = set(self.machine_of)
        for job in self.instance.jobs:
            if job.id not in placed:
                problems.append(f"job {job.id} unassigned")
        for m, members in self.machines().items():
            events: list[tuple[int, int]] = []
            for j in members:
                events.append((j.start, 1))
                events.append((j.end, -1))
            events.sort()
            load = 0
            for t, delta in events:
                load += delta
                if load > self.instance.g:
                    problems.append(f"machine {m} over capacity at {t}")
                    break
        return problems

    @property
    def is_valid(self) -> bool:
        return not self.violations()
