"""Scheduling-as-a-service: an HTTP/JSON layer over the repro pipeline.

The ROADMAP's service slice: ``POST /solve`` / ``/verify`` / ``/fuzz``
plus ``GET /healthz`` / ``/metrics`` (Prometheus text) served by a
stdlib :class:`~http.server.ThreadingHTTPServer` over a process
:class:`~repro.analysis.parallel.WorkerPool`.  Boot it with
``active-time serve`` or embed it with :func:`start_service`; talk to
it with :class:`ServiceClient`.
"""

from repro.service.client import ClientError, ServiceClient
from repro.service.metrics import RequestStats, render_prometheus
from repro.service.server import (
    DEFAULT_MAX_BODY,
    DEFAULT_SPLIT_JOBS,
    SchedulingService,
    ServiceError,
    ServiceHTTPServer,
    serve,
    start_service,
)
from repro.service.workers import NODES_PER_MS, SOLVE_ALGORITHMS, node_budget_for

__all__ = [
    "SchedulingService",
    "ServiceHTTPServer",
    "ServiceClient",
    "ServiceError",
    "ClientError",
    "RequestStats",
    "render_prometheus",
    "serve",
    "start_service",
    "node_budget_for",
    "NODES_PER_MS",
    "SOLVE_ALGORITHMS",
    "DEFAULT_MAX_BODY",
    "DEFAULT_SPLIT_JOBS",
]
