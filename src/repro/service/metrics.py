"""Request instrumentation and Prometheus text exposition.

The service keeps one :class:`RequestStats` (guarded by its own lock —
handler threads record concurrently) and renders ``/metrics`` in the
Prometheus text format, version 0.0.4: solver service counters
(:func:`repro.solver.solver_stats`), flow engine counters
(:func:`repro.flow.incremental.flow_stats`) and per-endpoint request
counters/latency quantiles, all under the ``repro_`` prefix.

Latency quantiles are computed at scrape time from a bounded
per-endpoint reservoir (the most recent :data:`LATENCY_WINDOW`
observations), which is the standard client-side summary trade-off:
exact over a sliding window, O(1) memory forever.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable, Mapping

#: Observations kept per endpoint for quantile estimation.
LATENCY_WINDOW = 2048

#: Quantiles exported per endpoint (Prometheus summary convention).
QUANTILES = (0.5, 0.95, 0.99)


def quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted non-empty list.

    Uses the standard nearest-rank definition ``rank = ⌈q·n⌉`` (1-based).
    An earlier version used ``round()``, whose banker's rounding pulled
    every quantile that lands exactly on a ``.5`` rank boundary *down*
    one observation — e.g. p95 of 30 observations returned the 28th
    value instead of the 29th.
    """
    if not sorted_values:
        raise ValueError("no observations")
    n = len(sorted_values)
    rank = math.ceil(q * n)  # 1-based nearest rank, half-up by ceiling
    return sorted_values[min(n - 1, max(0, rank - 1))]


class RequestStats:
    """Thread-safe per-endpoint request counters for one service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: dict[str, int] = {}
        self.errors: dict[tuple[str, str], int] = {}  # (endpoint, class)
        self.degraded: dict[str, int] = {}
        self.parts: dict[str, int] = {}  # fan-out units dispatched
        self.latency_sum: dict[str, float] = {}
        self.latency: dict[str, deque] = {}
        self.in_flight = 0

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1

    def exit(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def record(
        self,
        endpoint: str,
        status: int,
        elapsed_s: float,
        *,
        degraded: bool = False,
        parts: int = 0,
    ) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
            if status >= 400:
                key = (endpoint, f"{status // 100}xx")
                self.errors[key] = self.errors.get(key, 0) + 1
            if degraded:
                self.degraded[endpoint] = self.degraded.get(endpoint, 0) + 1
            if parts:
                self.parts[endpoint] = self.parts.get(endpoint, 0) + parts
            self.latency_sum[endpoint] = (
                self.latency_sum.get(endpoint, 0.0) + elapsed_s
            )
            self.latency.setdefault(
                endpoint, deque(maxlen=LATENCY_WINDOW)
            ).append(elapsed_s)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy, safe to render without holding the lock."""
        with self._lock:
            return {
                "requests": dict(self.requests),
                "errors": {
                    f"{ep}:{cls}": n for (ep, cls), n in self.errors.items()
                },
                "degraded": dict(self.degraded),
                "parts": dict(self.parts),
                "latency_sum": dict(self.latency_sum),
                "latency": {
                    ep: sorted(obs) for ep, obs in self.latency.items()
                },
                "in_flight": self.in_flight,
            }


def merge_counter_dicts(
    into: dict[str, Any], delta: Mapping[str, Any]
) -> None:
    """Accumulate a stats *delta* dict into an aggregate, in place.

    Handles the nested ``backends`` mapping the solver snapshot carries;
    every other value is numeric and adds.
    """
    for key, value in delta.items():
        if isinstance(value, Mapping):
            sub = into.setdefault(key, {})
            for name, inner in value.items():
                if isinstance(inner, Mapping):
                    slot = sub.setdefault(name, {})
                    for k, v in inner.items():
                        slot[k] = slot.get(k, 0) + v
                else:
                    sub[name] = sub.get(name, 0) + inner
        else:
            into[key] = into.get(key, 0) + value


def _lines_for_counters(
    prefix: str, snap: Mapping[str, Any], help_text: str
) -> Iterable[str]:
    """Flatten a solver/flow-style snapshot into Prometheus lines."""
    yield f"# HELP {prefix} {help_text}"
    yield f"# TYPE {prefix} counter"
    for key, value in sorted(snap.items()):
        if key == "backends":
            continue
        yield f'{prefix}{{counter="{key}"}} {value}'
    for name, per in sorted(snap.get("backends", {}).items()):
        for k, v in sorted(per.items()):
            yield f'{prefix}{{counter="backend_{k}",backend="{name}"}} {v}'


def render_prometheus(
    request_snap: Mapping[str, Any],
    solver_snap: Mapping[str, Any],
    flow_snap: Mapping[str, Any],
    *,
    uptime_s: float,
    workers: int,
) -> str:
    """The full ``/metrics`` payload (text format 0.0.4)."""
    lines: list[str] = []
    lines.append("# HELP repro_service_uptime_seconds Seconds since boot.")
    lines.append("# TYPE repro_service_uptime_seconds gauge")
    lines.append(f"repro_service_uptime_seconds {uptime_s:.3f}")
    lines.append("# HELP repro_service_workers Configured worker pool width.")
    lines.append("# TYPE repro_service_workers gauge")
    lines.append(f"repro_service_workers {workers}")

    lines.append(
        "# HELP repro_queue_depth Requests currently in flight "
        "(handler threads inside a request)."
    )
    lines.append("# TYPE repro_queue_depth gauge")
    lines.append(f"repro_queue_depth {request_snap.get('in_flight', 0)}")

    lines.append("# HELP repro_requests_total HTTP requests by endpoint.")
    lines.append("# TYPE repro_requests_total counter")
    for ep, n in sorted(request_snap.get("requests", {}).items()):
        lines.append(f'repro_requests_total{{endpoint="{ep}"}} {n}')

    lines.append(
        "# HELP repro_request_errors_total Non-2xx responses by "
        "endpoint and status class."
    )
    lines.append("# TYPE repro_request_errors_total counter")
    for key, n in sorted(request_snap.get("errors", {}).items()):
        ep, _, cls = key.partition(":")
        lines.append(
            f'repro_request_errors_total{{endpoint="{ep}",class="{cls}"}} {n}'
        )

    lines.append(
        "# HELP repro_degraded_total Responses that degraded to a "
        "budget-limited incumbent."
    )
    lines.append("# TYPE repro_degraded_total counter")
    for ep, n in sorted(request_snap.get("degraded", {}).items()):
        lines.append(f'repro_degraded_total{{endpoint="{ep}"}} {n}')

    lines.append(
        "# HELP repro_fanout_parts_total Worker-pool units dispatched "
        "(sub-instances, fuzz shards)."
    )
    lines.append("# TYPE repro_fanout_parts_total counter")
    for ep, n in sorted(request_snap.get("parts", {}).items()):
        lines.append(f'repro_fanout_parts_total{{endpoint="{ep}"}} {n}')

    lines.append(
        "# HELP repro_request_latency_seconds Request wall time "
        "(summary over a sliding window)."
    )
    lines.append("# TYPE repro_request_latency_seconds summary")
    for ep, obs in sorted(request_snap.get("latency", {}).items()):
        for q in QUANTILES:
            lines.append(
                f'repro_request_latency_seconds{{endpoint="{ep}",'
                f'quantile="{q}"}} {quantile(obs, q):.6f}'
            )
        lines.append(
            f'repro_request_latency_seconds_sum{{endpoint="{ep}"}} '
            f"{request_snap.get('latency_sum', {}).get(ep, 0.0):.6f}"
        )
        lines.append(
            f'repro_request_latency_seconds_count{{endpoint="{ep}"}} '
            f"{request_snap.get('requests', {}).get(ep, len(obs))}"
        )

    lines.extend(
        _lines_for_counters(
            "repro_solver_stats",
            solver_snap,
            "Solver service counters (local process + pooled worker deltas).",
        )
    )
    lines.extend(
        _lines_for_counters(
            "repro_flow_stats",
            flow_snap,
            "Incremental flow engine counters (local + pooled worker deltas).",
        )
    )
    return "\n".join(lines) + "\n"
