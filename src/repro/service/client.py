"""A tiny stdlib client for the scheduling service.

Used by the test suite, the CI ``service-smoke`` job and the E18
benchmark; also a reasonable starting point for real callers — it is
just ``urllib`` with the service's JSON conventions applied.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.instances.io import instance_to_dict
from repro.instances.jobs import Instance
from repro.util.errors import ReproError


class ClientError(ReproError):
    """A non-2xx response; carries the status and decoded error body."""

    def __init__(self, message: str, *, status: int, body: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class ServiceClient:
    """HTTP client bound to one service base URL.

    ``timeout`` is the per-request socket timeout in seconds — the
    client never hangs past it, matching the service's own
    never-hang-a-connection contract.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, bytes, str]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (
                    resp.status,
                    resp.read(),
                    resp.headers.get("Content-Type", ""),
                )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                decoded: Any = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                decoded = raw.decode("utf-8", "replace")
            error = (
                decoded.get("error", decoded)
                if isinstance(decoded, dict)
                else decoded
            )
            raise ClientError(
                f"{method} {path} -> {exc.code}: {error}",
                status=exc.code,
                body=decoded,
            ) from exc

    def _post_json(self, path: str, body: dict[str, Any]) -> dict[str, Any]:
        _, raw, _ = self._request("POST", path, body)
        return json.loads(raw)

    @staticmethod
    def _instance_doc(instance: Instance | dict[str, Any]) -> dict[str, Any]:
        if isinstance(instance, Instance):
            return instance_to_dict(instance)
        return instance

    # -- endpoints -----------------------------------------------------

    def solve(
        self, instance: Instance | dict[str, Any], **options: Any
    ) -> dict[str, Any]:
        """``POST /solve``; options: algorithm, backend, deadline_ms,
        node_budget, split."""
        body = {"instance": self._instance_doc(instance), **options}
        return self._post_json("/solve", body)

    def verify(
        self, instance: Instance | dict[str, Any], **options: Any
    ) -> dict[str, Any]:
        """``POST /verify``; options: exact_max_jobs, backend."""
        body = {"instance": self._instance_doc(instance), **options}
        return self._post_json("/verify", body)

    def fuzz(self, **config: Any) -> dict[str, Any]:
        """``POST /fuzz``; config: n_instances, seed, family, max_jobs,
        exact_max_jobs."""
        return self._post_json("/fuzz", config)

    def healthz(self) -> dict[str, Any]:
        _, raw, _ = self._request("GET", "/healthz")
        return json.loads(raw)

    def metrics(self) -> str:
        _, raw, _ = self._request("GET", "/metrics")
        return raw.decode("utf-8")

    def wait_healthy(self, *, timeout: float = 60.0) -> dict[str, Any]:
        """Poll ``/healthz`` until it answers ok, or raise on timeout."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                doc = self.healthz()
                if doc.get("ok"):
                    return doc
            except (ClientError, urllib.error.URLError, OSError) as exc:
                last = exc
            time.sleep(0.05)
        raise TimeoutError(
            f"service at {self.base_url} not healthy after {timeout}s"
            + (f" (last error: {last})" if last else "")
        )
