"""Worker-side request execution for the scheduling service.

Every function here is addressed by its dotted
``"repro.service.workers:<name>"`` reference through the
:class:`repro.analysis.parallel.WorkerPool` transport, so only plain
JSON-shaped payload dicts cross the process boundary — the same contract
:func:`repro.analysis.parallel.run_jobs` uses for benchmark fan-out.

Each worker returns a result dict that always carries ``solver`` and
``flow`` stat *deltas* (the counters attributable to that unit of work
in whichever process ran it).  The server merges pooled deltas into its
own aggregate so ``/metrics`` reflects work done in worker processes,
whose process-global counters would otherwise be invisible.

The deadline contract lives in :func:`solve_part`: a request
``deadline_ms`` is mapped onto the branch-and-bound ``node_budget`` (the
repo's existing degradation path) and a tripped budget returns the
picklable :class:`~repro.baselines.exact.BudgetExceeded` incumbent
marked ``degraded: true`` — a slow instance degrades, it never hangs
the connection.
"""

from __future__ import annotations

from typing import Any

from repro.flow.incremental import flow_stats, flow_stats_delta
from repro.instances.io import (
    instance_from_dict,
    instance_to_dict,
    schedule_to_dict,
)
from repro.solver import solver_stats
from repro.solver.stats import stats_delta

#: Conversion rate from a request deadline to a branch-and-bound node
#: budget.  Deliberately conservative (the search expands well over
#: 2000 nodes/ms on commodity hardware), so a mapped budget trips
#: *before* the wall-clock deadline rather than after it.
NODES_PER_MS = 2_000

#: Algorithms ``/solve`` accepts, mirroring the CLI ``solve`` choices
#: that make sense per-request (online policies need a trace, not an
#: instance snapshot).
SOLVE_ALGORITHMS = ("nested", "greedy", "kk", "exact")


def node_budget_for(
    deadline_ms: float | None, node_budget: int | None
) -> int | None:
    """Resolve the effective exact-search budget for a request.

    An explicit ``node_budget`` wins; otherwise ``deadline_ms`` is
    converted at :data:`NODES_PER_MS`.  ``None`` means "no cap" (the
    solver's own default applies).
    """
    if node_budget is not None:
        return node_budget
    if deadline_ms is None:
        return None
    return max(1, int(deadline_ms * NODES_PER_MS))


def _with_stat_deltas(fn):
    """Run ``fn()`` and attach solver/flow stat deltas to its dict."""
    solver_before = solver_stats()
    flow_before = flow_stats()
    result = fn()
    result["solver"] = stats_delta(solver_stats(), solver_before)
    result["flow"] = flow_stats_delta(flow_stats(), flow_before)
    return result


def _solve(doc: dict[str, Any], options: dict[str, Any]) -> dict[str, Any]:
    instance = instance_from_dict(doc)
    policy = options.get("policy")
    if policy is not None:
        from repro.policies import run_policy

        result = run_policy(policy, instance)
        return {
            "algorithm": policy,
            "policy": policy,
            "policy_kind": result.kind,
            "policy_stats": result.stats,
            "degraded": bool(result.stats.get("degraded")),
            "part": instance.name,
            "active_time": result.active_time,
            "schedule": schedule_to_dict(result.schedule),
        }
    algorithm = options.get("algorithm", "nested")
    out: dict[str, Any] = {
        "algorithm": algorithm,
        "degraded": False,
        "part": instance.name,
    }
    if algorithm == "nested":
        from repro.core.algorithm import solve_nested

        result = solve_nested(instance, backend=options.get("backend"))
        schedule = result.schedule
        out["lp_value"] = result.lp_value
        out["repairs"] = result.repairs
    elif algorithm == "greedy":
        from repro.baselines.minimal_feasible import minimal_feasible_schedule

        schedule = minimal_feasible_schedule(instance)
    elif algorithm == "kk":
        from repro.baselines.kumar_khuller import kumar_khuller_schedule

        schedule = kumar_khuller_schedule(instance)
    elif algorithm == "exact":
        from repro.baselines.exact import BudgetExceeded, solve_exact

        budget = node_budget_for(
            options.get("deadline_ms"), options.get("node_budget")
        )
        kwargs = {} if budget is None else {"node_budget": budget}
        try:
            exact = solve_exact(instance, **kwargs)
            schedule = exact.schedule(instance)
            out["nodes_explored"] = exact.nodes_explored
        except BudgetExceeded as exc:
            incumbent = exc.incumbent()
            if incumbent is None:
                raise
            schedule = incumbent.schedule(instance)
            out["degraded"] = True
            out["degraded_reason"] = str(exc)
            out["nodes_explored"] = incumbent.nodes_explored
    else:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; pick one of {SOLVE_ALGORITHMS}"
        )
    out["active_time"] = schedule.active_time
    out["schedule"] = schedule_to_dict(schedule)
    return out


def solve_part(payload: tuple[dict, dict]) -> dict[str, Any]:
    """Solve one (sub-)instance; the ``/solve`` fan-out unit."""
    doc, options = payload
    return _with_stat_deltas(lambda: _solve(doc, options))


def _verify(doc: dict[str, Any], options: dict[str, Any]) -> dict[str, Any]:
    from repro.verify.oracle import DEFAULT_EXACT_MAX_JOBS, verify_instance

    instance = instance_from_dict(doc)
    report = verify_instance(
        instance,
        exact_max_jobs=int(
            options.get("exact_max_jobs", DEFAULT_EXACT_MAX_JOBS)
        ),
        backend=options.get("backend"),
    )
    return {
        "status": report.status,
        "ok": report.status != "violation",
        "violations": [
            {"prop": v.prop, "detail": v.detail} for v in report.violations
        ],
        "lp_value": report.lp_value,
        "active_time": report.active_time,
        "optimum": report.optimum,
        "instance": instance_to_dict(instance),
    }


def verify_part(payload: tuple[dict, dict]) -> dict[str, Any]:
    """Run the differential oracle on one instance."""
    doc, options = payload
    return _with_stat_deltas(lambda: _verify(doc, options))


def fuzz_shard(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one shard of a ``/fuzz`` campaign and return its report dict.

    The service splits a requested campaign into ``shard_count`` shards
    (one per pool worker) and reassembles them with
    :func:`repro.verify.fuzz.merge_fuzz_reports` — the identical
    machinery the CI fuzz matrix rests on, so a served campaign equals
    the unsharded CLI run.
    """
    from repro.verify.fuzz import FuzzConfig, fuzz_report_dict, run_fuzz

    def run() -> dict[str, Any]:
        config = FuzzConfig(
            n_instances=int(payload["n_instances"]),
            seed=int(payload.get("seed", 0)),
            family=payload.get("family", "mixed"),
            max_jobs=int(payload.get("max_jobs", 12)),
            exact_max_jobs=int(payload.get("exact_max_jobs", 8)),
            shrink=False,  # shrinking is a CLI affordance, not a service one
            shard_index=int(payload.get("shard_index", 0)),
            shard_count=int(payload.get("shard_count", 1)),
        )
        return {"report": fuzz_report_dict(run_fuzz(config, out_dir=None))}

    return _with_stat_deltas(run)
