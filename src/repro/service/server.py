"""The scheduling service: stdlib HTTP/JSON over the repro pipeline.

Endpoints (all JSON in the :mod:`repro.instances.io` format):

* ``POST /solve``   — schedule an instance (``nested``/``greedy``/
  ``kk``/``exact``, or any registered policy via ``"policy"`` in the
  body / ``?policy=`` in the URL); large instances are split into independent
  sub-instances (:func:`repro.instances.transforms.split_independent`)
  and fanned out across the worker pool; ``deadline_ms`` maps onto the
  exact search's node budget and degrades to the incumbent
  (``degraded: true``) instead of timing out.
* ``POST /verify``  — one instance through the differential oracle.
* ``POST /fuzz``    — a bounded fuzz campaign, sharded across the pool
  and merged with the CI shard machinery.
* ``GET /healthz``  — liveness + uptime.
* ``GET /metrics``  — Prometheus text: request counters/latencies,
  solver service counters, flow engine counters.

The server is a :class:`~http.server.ThreadingHTTPServer` (one thread
per connection) in front of a
:class:`~repro.analysis.parallel.WorkerPool` (processes — CPU-bound
solves escape the GIL).  ``workers=1`` runs everything in-process,
which is the deterministic single-core path tests use.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.analysis.parallel import WorkerPool
from repro.baselines.exact import BudgetExceeded
from repro.flow.incremental import flow_stats
from repro.instances.io import instance_from_dict, instance_to_dict
from repro.instances.jobs import Instance
from repro.instances.transforms import split_independent
from repro.service.metrics import (
    RequestStats,
    merge_counter_dicts,
    render_prometheus,
)
from repro.service.workers import SOLVE_ALGORITHMS
from repro.solver import solver_stats
from repro.util.errors import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    ReproError,
)

#: Default request-body cap (bytes); a million-job instance is a few MB,
#: anything bigger than this default is almost certainly a client bug.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Instances at or above this many jobs are split into independent
#: sub-instances and fanned out (clients can force either way with the
#: ``split`` flag).  Below it the request runs as a single unit, so
#: small served solves take the exact code path the CLI takes — the
#: service-smoke job asserts bit-identical answers on that path.
DEFAULT_SPLIT_JOBS = 64

#: Cap on instances a single ``/fuzz`` request may ask for.
MAX_FUZZ_INSTANCES = 2_000


class ServiceError(ReproError):
    """A request the service refuses; carries the HTTP status to send."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _reject_bool(body: dict[str, Any], *names: str) -> None:
    """Refuse ``true``/``false`` where a number is expected (422).

    ``bool`` is a subclass of ``int`` in Python, so ``True`` sails
    through ``isinstance(x, (int, float))`` guards and coerces to ``1``
    downstream — a request with ``"deadline_ms": true`` would silently
    run with a 1 ms deadline instead of being rejected.  That is a typed
    client error, not a range error, hence 422 rather than 400.
    """
    for name in names:
        if isinstance(body.get(name), bool):
            raise ServiceError(
                f"{name} must be a number, not a boolean", status=422
            )


class SchedulingService:
    """Request execution + shared state behind the HTTP handler.

    Separate from the HTTP plumbing so tests and benchmarks can call
    :meth:`solve`/:meth:`verify`/:meth:`fuzz` directly, and so one
    service instance can sit behind any number of listener sockets.
    """

    def __init__(
        self,
        *,
        workers: int | None = 1,
        max_body: int = DEFAULT_MAX_BODY,
        split_jobs: int = DEFAULT_SPLIT_JOBS,
    ) -> None:
        self.pool = WorkerPool(workers)
        self.max_body = max_body
        self.split_jobs = split_jobs
        self.started = time.monotonic()
        self.request_stats = RequestStats()
        self._pooled_lock = threading.Lock()
        self._pooled_solver: dict[str, Any] = {}
        self._pooled_flow: dict[str, Any] = {}

    # -- worker-pool plumbing -----------------------------------------

    @property
    def pool_width(self) -> int:
        return self.pool.max_workers or os.cpu_count() or 1

    def _map(self, worker: str, payloads: list[Any]) -> list[Any]:
        """Fan payloads out and fold worker stat deltas into /metrics.

        In-process maps skip the fold: their solves already hit this
        process's own counters, and folding the returned deltas on top
        would double-count.
        """
        results = self.pool.map(worker, payloads)
        if not self.pool.in_process:
            with self._pooled_lock:
                for result in results:
                    merge_counter_dicts(
                        self._pooled_solver, result.get("solver", {})
                    )
                    merge_counter_dicts(
                        self._pooled_flow, result.get("flow", {})
                    )
        return results

    # -- endpoints -----------------------------------------------------

    def solve(self, body: dict[str, Any]) -> dict[str, Any]:
        instance = _parse_instance(body)
        if body.get("policy") is not None:
            return self._solve_policy(instance, body)
        algorithm = body.get("algorithm", "nested")
        if algorithm not in SOLVE_ALGORITHMS:
            raise ServiceError(
                f"unknown algorithm {algorithm!r}; "
                f"pick one of {list(SOLVE_ALGORITHMS)}"
            )
        _reject_bool(body, "deadline_ms", "node_budget")
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise ServiceError("deadline_ms must be a positive number")
        node_budget = body.get("node_budget")
        if node_budget is not None and (
            not isinstance(node_budget, int) or node_budget < 1
        ):
            raise ServiceError("node_budget must be a positive integer")
        split = body.get("split")
        if split is not None and not isinstance(split, bool):
            raise ServiceError("split must be a boolean")
        options = {
            "algorithm": algorithm,
            "backend": body.get("backend"),
            "deadline_ms": deadline_ms,
            "node_budget": node_budget,
        }
        parts = self._split(instance, split)
        payloads = [(instance_to_dict(p), options) for p in parts]
        try:
            results = self._map("repro.service.workers:solve_part", payloads)
        except BudgetExceeded as exc:
            # No incumbent to degrade to — the one case that 504s.
            raise ServiceError(
                f"deadline exhausted with no incumbent: {exc}", status=504
            ) from exc
        except InfeasibleInstanceError as exc:
            raise ServiceError(str(exc), status=422) from exc

        assignment: dict[str, list[int]] = {}
        for result in results:
            assignment.update(result["schedule"]["assignment"])
        response: dict[str, Any] = {
            "algorithm": algorithm,
            "active_time": sum(r["active_time"] for r in results),
            "degraded": any(r["degraded"] for r in results),
            "parts": len(results),
            "schedule": {
                "version": results[0]["schedule"]["version"],
                "instance": instance_to_dict(instance),
                "assignment": assignment,
            },
            "solver": _fold_deltas(results, "solver"),
            "flow": _fold_deltas(results, "flow"),
        }
        if algorithm == "nested":
            response["lp_value"] = sum(r["lp_value"] for r in results)
            response["repairs"] = sum(r["repairs"] for r in results)
        if algorithm == "exact":
            response["nodes_explored"] = sum(
                r.get("nodes_explored", 0) for r in results
            )
            reasons = [
                r["degraded_reason"] for r in results if r["degraded"]
            ]
            if reasons:
                response["degraded_reason"] = "; ".join(reasons)
        return response

    def _solve_policy(
        self, instance: Instance, body: dict[str, Any]
    ) -> dict[str, Any]:
        """``/solve`` with a registered policy instead of an algorithm.

        Validation mirrors the existing contracts: a bool-typed name is
        a *typed* client error (422, like ``_reject_bool``), an unknown
        name is 404 carrying the known-policy list.  Policy runs never
        split: an online policy's slot decisions are a function of the
        whole arrival trace, so fan-out would change its semantics.
        """
        policy = body["policy"]
        if isinstance(policy, bool) or not isinstance(policy, str):
            raise ServiceError(
                "policy must be a string name, not a boolean or number",
                status=422,
            )
        if body.get("algorithm") is not None:
            raise ServiceError('pass "algorithm" or "policy", not both')
        from repro.policies import policy_names

        known = policy_names()
        if policy not in known:
            raise ServiceError(
                f"unknown policy {policy!r}; known policies: "
                f"{', '.join(known)}",
                status=404,
            )
        payload = (instance_to_dict(instance), {"policy": policy})
        try:
            results = self._map(
                "repro.service.workers:solve_part", [payload]
            )
        except InfeasibleInstanceError as exc:
            raise ServiceError(str(exc), status=422) from exc
        result = results[0]
        return {
            "policy": policy,
            "policy_kind": result["policy_kind"],
            "active_time": result["active_time"],
            "degraded": bool(result["degraded"]),
            "parts": 1,
            "stats": result["policy_stats"],
            "schedule": {
                "version": result["schedule"]["version"],
                "instance": instance_to_dict(instance),
                "assignment": result["schedule"]["assignment"],
            },
            "solver": _fold_deltas(results, "solver"),
            "flow": _fold_deltas(results, "flow"),
        }

    def verify(self, body: dict[str, Any]) -> dict[str, Any]:
        _parse_instance(body)  # validate before crossing the pool
        _reject_bool(body, "exact_max_jobs")
        options = {
            "backend": body.get("backend"),
        }
        if body.get("exact_max_jobs") is not None:
            options["exact_max_jobs"] = body["exact_max_jobs"]
        results = self._map(
            "repro.service.workers:verify_part",
            [(body["instance"], options)],
        )
        report = dict(results[0])
        report.pop("instance", None)
        return report

    def fuzz(self, body: dict[str, Any]) -> dict[str, Any]:
        _reject_bool(
            body, "n_instances", "seed", "max_jobs", "exact_max_jobs"
        )
        n_instances = body.get("n_instances", 100)
        if not isinstance(n_instances, int) or n_instances < 1:
            raise ServiceError("n_instances must be a positive integer")
        if n_instances > MAX_FUZZ_INSTANCES:
            raise ServiceError(
                f"n_instances capped at {MAX_FUZZ_INSTANCES} per request "
                f"(got {n_instances}); run larger campaigns via the CLI"
            )
        shards = max(1, min(self.pool_width, n_instances))
        base = {
            "n_instances": n_instances,
            "seed": body.get("seed", 0),
            "family": body.get("family", "mixed"),
            "max_jobs": body.get("max_jobs", 12),
            "exact_max_jobs": body.get("exact_max_jobs", 8),
            "shard_count": shards,
        }
        try:
            payloads = [dict(base, shard_index=i) for i in range(shards)]
            results = self._map("repro.service.workers:fuzz_shard", payloads)
            reports = [r["report"] for r in results]
            from repro.verify.fuzz import merge_fuzz_reports

            merged = (
                merge_fuzz_reports(reports) if shards > 1 else reports[0]
            )
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        return {
            "ok": merged["ok"],
            "checked": merged["checked"],
            "skipped_infeasible": merged["skipped_infeasible"],
            "n_failures": merged["n_failures"],
            "failures": merged["failures"][:20],
            "shards": shards,
            "solver": _fold_deltas(results, "solver"),
            "flow": _fold_deltas(results, "flow"),
        }

    def healthz(self) -> dict[str, Any]:
        snap = self.request_stats.snapshot()
        return {
            "ok": True,
            "uptime_s": round(time.monotonic() - self.started, 3),
            "workers": self.pool_width,
            "in_process": self.pool.in_process,
            "requests_total": sum(snap["requests"].values()),
        }

    def metrics_text(self) -> str:
        with self._pooled_lock:
            solver_snap = dict(solver_stats())
            merge_counter_dicts(solver_snap, self._pooled_solver)
            flow_snap = dict(flow_stats())
            merge_counter_dicts(flow_snap, self._pooled_flow)
        return render_prometheus(
            self.request_stats.snapshot(),
            solver_snap,
            flow_snap,
            uptime_s=time.monotonic() - self.started,
            workers=self.pool_width,
        )

    # -- helpers -------------------------------------------------------

    def _split(
        self, instance: Instance, split: bool | None
    ) -> list[Instance]:
        if split is False:
            return [instance]
        if split is True or instance.n >= self.split_jobs:
            return split_independent(instance)
        return [instance]

    def shutdown(self) -> None:
        self.pool.shutdown()


def _parse_instance(body: dict[str, Any]) -> Instance:
    doc = body.get("instance")
    if not isinstance(doc, dict):
        raise ServiceError('body must carry an "instance" object')
    try:
        return instance_from_dict(doc)
    except InvalidInstanceError as exc:
        raise ServiceError(str(exc)) from exc


def _fold_deltas(results: list[dict], key: str) -> dict[str, Any]:
    folded: dict[str, Any] = {}
    for result in results:
        merge_counter_dicts(folded, result.get(key, {}))
    return folded


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the :class:`SchedulingService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-scheduling"

    # The default handler logs every request to stderr; the service
    # exposes counters instead, so keep the console quiet unless the
    # server was built verbose.
    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def service(self) -> SchedulingService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------

    def _send(
        self, status: int, payload: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(
        self,
        status: int,
        doc: dict[str, Any],
        *,
        endpoint: str,
        t0: float,
        degraded: bool = False,
        parts: int = 0,
    ) -> None:
        """Record the request, then write the response.

        Counters are recorded *before* the body hits the socket so a
        client that scrapes ``/metrics`` immediately after a response
        always sees that response counted — no handler-thread race.
        """
        self.service.request_stats.record(
            endpoint,
            status,
            time.perf_counter() - t0,
            degraded=degraded,
            parts=parts,
        )
        self._send(
            status,
            json.dumps(doc).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > self.service.max_body:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{self.service.max_body}-byte cap",
                status=413,
            )
        if length <= 0:
            raise ServiceError("a JSON request body is required")
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        endpoint = path.lstrip("/") or "root"
        t0 = time.perf_counter()
        self.service.request_stats.enter()
        try:
            if path == "/healthz":
                self._send_json(
                    200, self.service.healthz(), endpoint="healthz", t0=t0
                )
            elif path == "/metrics":
                self.service.request_stats.record(
                    "metrics", 200, time.perf_counter() - t0
                )
                self._send(
                    200,
                    self.service.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path in ("/solve", "/verify", "/fuzz"):
                self._send_json(
                    405, {"error": "use POST"}, endpoint=endpoint, t0=t0
                )
            else:
                self._send_json(
                    404,
                    {"error": f"no route {self.path!r}"},
                    endpoint=endpoint,
                    t0=t0,
                )
        finally:
            self.service.request_stats.exit()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _, raw_query = self.path.partition("?")
        endpoint = path.lstrip("/") or "root"
        t0 = time.perf_counter()
        self.service.request_stats.enter()
        try:
            handler = {
                "/solve": self.service.solve,
                "/verify": self.service.verify,
                "/fuzz": self.service.fuzz,
            }.get(path)
            if handler is None:
                if path in ("/healthz", "/metrics"):
                    self._send_json(
                        405, {"error": "use GET"}, endpoint=endpoint, t0=t0
                    )
                else:
                    self._send_json(
                        404,
                        {"error": f"no route {self.path!r}"},
                        endpoint=endpoint,
                        t0=t0,
                    )
                return
            try:
                body = self._read_body()
                # Query parameters are string-valued defaults — the JSON
                # body wins on conflict (``/solve?policy=lazy`` is the
                # supported spelling for string options like ``policy``).
                if raw_query:
                    from urllib.parse import parse_qs

                    for key, values in parse_qs(raw_query).items():
                        body.setdefault(key, values[-1])
                response = handler(body)
            except ServiceError as exc:
                self._send_json(
                    exc.status, {"error": str(exc)}, endpoint=endpoint, t0=t0
                )
                return
            except ReproError as exc:
                self._send_json(
                    422,
                    {"error": f"{type(exc).__name__}: {exc}"},
                    endpoint=endpoint,
                    t0=t0,
                )
                return
            except Exception as exc:  # never let a request kill the thread
                self._send_json(
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                    endpoint=endpoint,
                    t0=t0,
                )
                return
            self._send_json(
                200,
                response,
                endpoint=endpoint,
                t0=t0,
                degraded=bool(response.get("degraded")),
                parts=response.get("parts", response.get("shards", 0)),
            )
        finally:
            self.service.request_stats.exit()


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading listener bound to one :class:`SchedulingService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: SchedulingService,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_service(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int | None = 1,
    max_body: int = DEFAULT_MAX_BODY,
    split_jobs: int = DEFAULT_SPLIT_JOBS,
    verbose: bool = False,
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Boot a server on a background thread; returns (server, thread).

    ``port=0`` binds an ephemeral port (read it from ``server.port``).
    Callers own shutdown::

        server, thread = start_service()
        ...
        server.shutdown(); server.service.shutdown(); thread.join()
    """
    service = SchedulingService(
        workers=workers, max_body=max_body, split_jobs=split_jobs
    )
    server = ServiceHTTPServer((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service", daemon=True
    )
    thread.start()
    return server, thread


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int | None = 1,
    max_body: int = DEFAULT_MAX_BODY,
    split_jobs: int = DEFAULT_SPLIT_JOBS,
    verbose: bool = False,
) -> int:
    """Run the service in the foreground (the CLI ``serve`` entry).

    Prints the bound address on stdout (flushed) before blocking, so
    supervisors — and the CI smoke script — can discover an ephemeral
    port.  Ctrl-C shuts down cleanly.
    """
    service = SchedulingService(
        workers=workers, max_body=max_body, split_jobs=split_jobs
    )
    server = ServiceHTTPServer((host, port), service, verbose=verbose)
    print(
        f"serving on http://{host}:{server.port} "
        f"(workers={service.pool_width}"
        f"{' in-process' if service.pool.in_process else ''}, "
        f"max_body={max_body})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        service.shutdown()
    return 0
