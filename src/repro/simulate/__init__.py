"""Discrete-time batch-machine execution model."""

from repro.simulate.machine import BatchMachine, SimulationResult, SlotEvent

__all__ = ["BatchMachine", "SimulationResult", "SlotEvent"]
