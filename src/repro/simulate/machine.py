"""Discrete-time batch-machine simulator.

Executes a :class:`~repro.core.schedule.Schedule` slot by slot the way the
paper's model describes the hardware: the machine powers on for a slot,
runs up to ``g`` job-units, and powers off when idle.  The simulator is an
independent executable model — it re-derives energy/active-time from the
event trace rather than from the schedule object, which gives integration
tests a second opinion and gives the examples something tangible to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import Schedule
from repro.util.errors import InvalidInstanceError


@dataclass(frozen=True)
class SlotEvent:
    """What happened in one machine slot."""

    slot: int
    running: tuple[int, ...]  # job ids
    powered: bool

    @property
    def load(self) -> int:
        return len(self.running)


@dataclass
class SimulationResult:
    """Trace plus derived accounting."""

    events: list[SlotEvent]
    active_slots: int
    energy: float
    total_units: int
    preemptions: int
    remaining: dict[int, int] = field(default_factory=dict)

    @property
    def all_finished(self) -> bool:
        return all(v == 0 for v in self.remaining.values())

    def utilization(self, g: int) -> float:
        if self.active_slots == 0:
            return 0.0
        return self.total_units / (g * self.active_slots)


class BatchMachine:
    """A capacity-``g`` machine with a fixed per-active-slot energy cost."""

    def __init__(self, g: int, power_per_slot: float = 1.0) -> None:
        if g < 1:
            raise InvalidInstanceError("capacity must be >= 1")
        self.g = g
        self.power_per_slot = power_per_slot

    def run(self, schedule: Schedule) -> SimulationResult:
        """Execute the schedule; raise on any model violation.

        Checks performed live (not via the schedule's validator): window
        containment, per-slot capacity, per-job volume, no duplicate run.
        """
        inst = schedule.instance
        if inst.g != self.g:
            raise InvalidInstanceError(
                f"machine capacity {self.g} != instance capacity {inst.g}"
            )
        by_slot: dict[int, list[int]] = {}
        for jid, slots in schedule.assignment.items():
            for t in slots:
                by_slot.setdefault(t, []).append(jid)

        remaining = {j.id: j.processing for j in inst.jobs}
        windows = {j.id: (j.release, j.deadline) for j in inst.jobs}
        last_ran: dict[int, int] = {}
        events: list[SlotEvent] = []
        energy = 0.0
        total_units = 0
        preemptions = 0
        for t in sorted(by_slot):
            running = tuple(sorted(by_slot[t]))
            if len(running) != len(set(running)):
                raise InvalidInstanceError(f"slot {t}: duplicate job run")
            if len(running) > self.g:
                raise InvalidInstanceError(
                    f"slot {t}: load {len(running)} exceeds capacity {self.g}"
                )
            for jid in running:
                if jid not in remaining:
                    raise InvalidInstanceError(f"slot {t}: unknown job {jid}")
                r, d = windows[jid]
                if not (r <= t < d):
                    raise InvalidInstanceError(
                        f"slot {t}: job {jid} outside window [{r},{d})"
                    )
                if remaining[jid] <= 0:
                    raise InvalidInstanceError(
                        f"slot {t}: job {jid} already finished"
                    )
                remaining[jid] -= 1
                if jid in last_ran and last_ran[jid] != t - 1:
                    preemptions += 1
                last_ran[jid] = t
            energy += self.power_per_slot
            total_units += len(running)
            events.append(SlotEvent(slot=t, running=running, powered=True))

        return SimulationResult(
            events=events,
            active_slots=len(events),
            energy=energy,
            total_units=total_units,
            preemptions=preemptions,
            remaining=remaining,
        )
