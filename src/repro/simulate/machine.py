"""Discrete-time batch-machine simulator.

Executes a :class:`~repro.core.schedule.Schedule` slot by slot the way the
paper's model describes the hardware: the machine powers on for a slot,
runs up to ``g`` job-units, and powers off when idle.  The simulator is an
independent executable model — it re-derives energy/active-time from the
event trace rather than from the schedule object, which gives integration
tests a second opinion and gives the examples something tangible to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import Schedule
from repro.util.errors import InvalidInstanceError


@dataclass(frozen=True)
class SlotEvent:
    """What happened in one machine slot."""

    slot: int
    running: tuple[int, ...]  # job ids
    powered: bool

    @property
    def load(self) -> int:
        return len(self.running)


@dataclass
class SimulationResult:
    """Trace plus derived accounting."""

    events: list[SlotEvent]
    active_slots: int
    energy: float
    total_units: int
    preemptions: int
    remaining: dict[int, int] = field(default_factory=dict)

    @property
    def all_finished(self) -> bool:
        return all(v == 0 for v in self.remaining.values())

    def utilization(self, g: int) -> float:
        if self.active_slots == 0:
            return 0.0
        return self.total_units / (g * self.active_slots)


class BatchMachine:
    """A capacity-``g`` machine with a fixed per-active-slot energy cost."""

    def __init__(self, g: int, power_per_slot: float = 1.0) -> None:
        if g < 1:
            raise InvalidInstanceError("capacity must be >= 1")
        self.g = g
        self.power_per_slot = power_per_slot

    def run(self, schedule: Schedule) -> SimulationResult:
        """Execute the schedule; raise on any model violation.

        Checks performed live (not via the schedule's validator): window
        containment, per-slot capacity, per-job volume, no duplicate run.
        """
        inst = schedule.instance
        if inst.g != self.g:
            raise InvalidInstanceError(
                f"machine capacity {self.g} != instance capacity {inst.g}"
            )
        by_slot: dict[int, list[int]] = {}
        for jid, slots in schedule.assignment.items():
            for t in slots:
                by_slot.setdefault(t, []).append(jid)

        remaining = {j.id: j.processing for j in inst.jobs}
        windows = {j.id: (j.release, j.deadline) for j in inst.jobs}
        last_ran: dict[int, int] = {}
        events: list[SlotEvent] = []
        energy = 0.0
        total_units = 0
        preemptions = 0
        # The trace covers the whole active span: slots the schedule skips
        # inside it are real machine states (powered down, nothing runs)
        # and are emitted as powered=False events — energy and active-slot
        # accounting count only powered slots.
        active = sorted(by_slot)
        span = range(active[0], active[-1] + 1) if active else range(0)
        for t in span:
            if t not in by_slot:
                events.append(SlotEvent(slot=t, running=(), powered=False))
                continue
            running = tuple(sorted(by_slot[t]))
            if len(running) != len(set(running)):
                raise InvalidInstanceError(f"slot {t}: duplicate job run")
            if len(running) > self.g:
                raise InvalidInstanceError(
                    f"slot {t}: load {len(running)} exceeds capacity {self.g}"
                )
            for jid in running:
                if jid not in remaining:
                    raise InvalidInstanceError(f"slot {t}: unknown job {jid}")
                r, d = windows[jid]
                if not (r <= t < d):
                    raise InvalidInstanceError(
                        f"slot {t}: job {jid} outside window [{r},{d})"
                    )
                if remaining[jid] <= 0:
                    raise InvalidInstanceError(
                        f"slot {t}: job {jid} already finished"
                    )
                remaining[jid] -= 1
                if jid in last_ran and last_ran[jid] != t - 1:
                    preemptions += 1
                last_ran[jid] = t
            energy += self.power_per_slot
            total_units += len(running)
            events.append(SlotEvent(slot=t, running=running, powered=True))

        return SimulationResult(
            events=events,
            active_slots=sum(1 for e in events if e.powered),
            energy=energy,
            total_units=total_units,
            preemptions=preemptions,
            remaining=remaining,
        )

    def audit_twin(self, session) -> SimulationResult:
        """Audit a twin session's committed history under the machine model.

        Replays the executed trace of a
        :class:`~repro.twin.session.TwinSession` (idle gaps included, as
        in :meth:`run`) and re-checks it independently of the twin's own
        bookkeeping: per-slot capacity, no duplicate runs, deadlines, and
        per-job volume conservation (executed units must equal admitted
        work minus outstanding work; finished jobs must have none left).
        Releases are checked against each job's *arrival-time* window
        start, not the current one — a later accepted slip can move the
        release past slots that were legitimately executed before it.

        ``remaining`` maps every non-cancelled admitted job to its
        outstanding units, so ``all_finished`` answers "did the session
        run everything it accepted so far?".
        """
        if session.g != self.g:
            raise InvalidInstanceError(
                f"machine capacity {self.g} != twin capacity {session.g}"
            )
        history = session.history()
        records = {r.job_id: r for r in session.jobs()}
        executed: dict[int, int] = {jid: 0 for jid in records}
        last_ran: dict[int, int] = {}
        events: list[SlotEvent] = []
        energy = 0.0
        total_units = 0
        preemptions = 0
        active = sorted(history)
        span = range(active[0], active[-1] + 1) if active else range(0)
        for t in span:
            if t not in history:
                events.append(SlotEvent(slot=t, running=(), powered=False))
                continue
            running = tuple(sorted(history[t]))
            if len(running) != len(set(running)):
                raise InvalidInstanceError(f"slot {t}: duplicate job run")
            if len(running) > self.g:
                raise InvalidInstanceError(
                    f"slot {t}: load {len(running)} exceeds capacity {self.g}"
                )
            if t >= session.now:
                raise InvalidInstanceError(
                    f"slot {t}: committed ahead of the twin clock {session.now}"
                )
            for jid in running:
                record = records.get(jid)
                if record is None:
                    raise InvalidInstanceError(f"slot {t}: unknown job {jid}")
                if not t < record.deadline:
                    raise InvalidInstanceError(
                        f"slot {t}: job {jid} ran at or past its deadline "
                        f"{record.deadline}"
                    )
                if executed[jid] >= record.processing:
                    raise InvalidInstanceError(
                        f"slot {t}: job {jid} already finished"
                    )
                executed[jid] += 1
                if jid in last_ran and last_ran[jid] != t - 1:
                    preemptions += 1
                last_ran[jid] = t
            energy += self.power_per_slot
            total_units += len(running)
            events.append(SlotEvent(slot=t, running=running, powered=True))
        for jid, record in records.items():
            ran = record.processing - record.remaining
            if record.status == "cancelled":
                if executed[jid] > ran:
                    raise InvalidInstanceError(
                        f"job {jid}: trace ran {executed[jid]} units but the "
                        f"twin accounts for {ran} before cancellation"
                    )
                continue
            if executed[jid] != ran:
                raise InvalidInstanceError(
                    f"job {jid}: trace ran {executed[jid]} units but the twin "
                    f"accounts for {ran}"
                )
            if record.status == "finished" and record.remaining != 0:
                raise InvalidInstanceError(
                    f"job {jid}: marked finished with {record.remaining} "
                    f"units outstanding"
                )
        remaining = {
            jid: record.remaining
            for jid, record in records.items()
            if record.status != "cancelled"
        }
        return SimulationResult(
            events=events,
            active_slots=sum(1 for e in events if e.powered),
            energy=energy,
            total_units=total_units,
            preemptions=preemptions,
            remaining=remaining,
        )
