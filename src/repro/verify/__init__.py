"""Differential verification and fuzzing for the active-time pipeline.

Three layers, consumed by tests, the ``active-time fuzz`` CLI, and CI:

* :mod:`repro.verify.properties` — the paper's quantitative claims as
  reusable property checks returning :class:`~repro.verify.properties.Violation`
  lists;
* :mod:`repro.verify.oracle` — runs the full pipeline on one instance and
  applies every property, cross-checking against the exact baseline;
* :mod:`repro.verify.fuzz` + :mod:`repro.verify.shrinker` — randomized
  campaigns that minimize any failure to a committable counterexample.
"""

from repro.verify.fuzz import (
    FAMILIES,
    FuzzConfig,
    FuzzFailure,
    FuzzResult,
    TwinFuzzConfig,
    TwinFuzzResult,
    campaign_family,
    campaign_instances,
    fuzz_report_dict,
    load_checkpoint,
    merge_fuzz_reports,
    render_fuzz_result,
    render_twin_fuzz_result,
    run_fuzz,
    run_twin_fuzz,
    sample_instance,
    stable_fuzz_report,
    twin_fuzz_report_dict,
    twin_trace_for,
    write_fuzz_report,
    write_twin_fuzz_report,
)
from repro.verify.oracle import OracleReport, verify_instance
from repro.verify.properties import (
    PROPERTY_NAMES,
    Violation,
    check_budget,
    check_classification,
    check_node_flow,
    check_repairs,
    check_rounding_reference,
    check_sandwich,
    check_schedule,
    check_transform,
    reference_round,
)
from repro.verify.shrinker import ShrinkResult, shrink_instance

__all__ = [
    "FAMILIES",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzResult",
    "OracleReport",
    "PROPERTY_NAMES",
    "ShrinkResult",
    "TwinFuzzConfig",
    "TwinFuzzResult",
    "Violation",
    "check_budget",
    "check_classification",
    "check_node_flow",
    "check_repairs",
    "check_rounding_reference",
    "check_sandwich",
    "check_schedule",
    "check_transform",
    "campaign_family",
    "campaign_instances",
    "fuzz_report_dict",
    "load_checkpoint",
    "merge_fuzz_reports",
    "stable_fuzz_report",
    "reference_round",
    "render_fuzz_result",
    "render_twin_fuzz_result",
    "run_fuzz",
    "run_twin_fuzz",
    "sample_instance",
    "shrink_instance",
    "twin_fuzz_report_dict",
    "twin_trace_for",
    "verify_instance",
    "write_fuzz_report",
    "write_twin_fuzz_report",
]
