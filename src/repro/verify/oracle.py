"""The differential oracle: run the full pipeline, cross-check everything.

For a laminar instance the oracle runs tree LP → Lemma 3.1 transform →
Algorithm 1 rounding → flow-based schedule extraction (all via
:func:`repro.core.algorithm.solve_nested`, so LP solves go through the
cached :class:`~repro.solver.SolverService`) and asserts every property in
:mod:`repro.verify.properties`.  Small instances are additionally
cross-checked against the branch-and-bound optimum
(:mod:`repro.baselines.exact`).

Non-laminar instances cannot enter the nested pipeline; for those the
oracle differentially tests the baselines against each other: greedy
minimal-feasible vs. exact vs. the natural LP lower bound, all re-validated
by the independent :class:`~repro.core.schedule.Schedule` checker.

Infeasible instances (every-slot flow test fails) are *skipped*, not
failed — the generators aim for feasible instances but the shrinker may
wander; skipping keeps the failure predicate monotone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instances.jobs import Instance
from repro.util.errors import ReproError
from repro.util.numeric import SUM_EPS
from repro.verify.properties import (
    Violation,
    check_budget,
    check_classification,
    check_node_flow,
    check_repairs,
    check_rounding_reference,
    check_sandwich,
    check_schedule,
    check_transform,
)

#: Default cap on jobs for the exact cross-check (branch and bound is
#: exponential; beyond this the sandwich check drops its OPT leg).
DEFAULT_EXACT_MAX_JOBS = 8

#: Node budget handed to the exact solver; BudgetExceeded skips the OPT leg.
_EXACT_NODE_BUDGET = 200_000


@dataclass
class OracleReport:
    """Outcome of one oracle run.

    ``status`` is ``"ok"``, ``"violation"`` or ``"infeasible"`` (skipped).
    """

    instance: Instance
    status: str
    violations: list[Violation] = field(default_factory=list)
    lp_value: float | None = None
    active_time: int | None = None
    optimum: int | None = None

    @property
    def ok(self) -> bool:
        return self.status != "violation"

    @property
    def failed(self) -> bool:
        return self.status == "violation"

    def property_names(self) -> list[str]:
        seen: list[str] = []
        for v in self.violations:
            if v.prop not in seen:
                seen.append(v.prop)
        return seen


def _exact_optimum(instance: Instance, max_jobs: int) -> int | None:
    """Branch-and-bound optimum, or ``None`` when too expensive."""
    if instance.n > max_jobs:
        return None
    from repro.baselines.exact import BudgetExceeded, solve_exact

    try:
        return solve_exact(instance, node_budget=_EXACT_NODE_BUDGET).optimum
    except BudgetExceeded:
        return None


def _verify_laminar(
    instance: Instance, report: OracleReport, exact_max_jobs: int, backend
) -> None:
    from repro.core.algorithm import solve_nested

    result = solve_nested(instance, backend=backend)
    canonical = result.canonical
    forest = canonical.forest
    tr = result.transformed
    rr = result.rounding

    report.lp_value = result.lp_value
    report.active_time = result.active_time
    report.violations += check_transform(
        forest, result.lp_solution.x, result.lp_solution.y, tr
    )
    report.violations += check_budget(tr.x, rr.x_tilde)
    report.violations += check_rounding_reference(forest, tr.x, tr.topmost, rr)
    report.violations += check_classification(
        forest, tr.x, rr.x_tilde, tr.topmost
    )
    report.violations += check_node_flow(canonical, rr.x_tilde)
    report.violations += check_repairs(result.repairs)
    report.violations += check_schedule(result.schedule)

    report.optimum = _exact_optimum(instance, exact_max_jobs)
    report.violations += check_sandwich(
        result.lp_value, result.active_time, report.optimum
    )


def _verify_general(
    instance: Instance, report: OracleReport, exact_max_jobs: int, backend
) -> None:
    """Cross-check the baselines on a non-laminar instance."""
    from repro.baselines.minimal_feasible import minimal_feasible_schedule
    from repro.lp.natural_lp import solve_natural_lp

    greedy = minimal_feasible_schedule(instance)
    report.active_time = greedy.active_time
    report.violations += check_schedule(greedy)

    report.optimum = _exact_optimum(instance, exact_max_jobs)
    if report.optimum is not None:
        if report.optimum > greedy.active_time:
            report.violations.append(
                Violation(
                    "sandwich",
                    f"exact OPT = {report.optimum} exceeds the greedy "
                    f"schedule's {greedy.active_time} active slots",
                )
            )
        natural = solve_natural_lp(instance, backend=backend).value
        report.lp_value = natural
        if natural > report.optimum + SUM_EPS:
            report.violations.append(
                Violation(
                    "sandwich",
                    f"natural LP {natural} exceeds OPT = {report.optimum}",
                )
            )


def verify_instance(
    instance: Instance,
    *,
    exact_max_jobs: int = DEFAULT_EXACT_MAX_JOBS,
    backend: str | None = None,
) -> OracleReport:
    """Run the oracle on one instance and return its report.

    Any exception escaping a pipeline stage is itself a finding (property
    ``crash``) — the pipeline must never die on a feasible instance.
    """
    from repro.flow.feasibility import all_slots_feasible

    report = OracleReport(instance=instance, status="ok")
    try:
        if instance.n > 0 and not all_slots_feasible(instance):
            report.status = "infeasible"
            return report
        if instance.is_laminar:
            _verify_laminar(instance, report, exact_max_jobs, backend)
        else:
            _verify_general(instance, report, exact_max_jobs, backend)
    except ReproError as exc:
        report.violations.append(
            Violation("crash", f"{type(exc).__name__}: {exc}")
        )
    if report.violations:
        report.status = "violation"
    return report
