"""Counterexample minimization: shrink a failing instance to its core.

Given an instance on which a predicate holds (``still_failing(inst)`` is
True — typically "the oracle reports a violation"), the shrinker applies
reduction passes until a fixpoint:

1. **drop jobs** — ddmin-style: remove large chunks first, then single
   jobs;
2. **shrink processing** — halve each job's ``p`` toward 1, then step by 1;
3. **shrink windows** — raise releases / lower deadlines while the window
   still fits the processing time;
4. **lower g** — halve toward 1, then step by 1;
5. **normalize** — translate so the earliest release is 0 (cosmetic, makes
   committed counterexamples canonical).

Every candidate must construct a valid :class:`Instance` *and* keep the
predicate true; anything else is discarded.  The predicate is evaluated at
most ``max_evals`` times so a pathological predicate cannot hang a fuzz
run.  Shrinking is deterministic: passes and candidates are tried in a
fixed order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.instances.jobs import Instance, Job
from repro.util.errors import InvalidInstanceError

Predicate = Callable[[Instance], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    instance: Instance
    evals: int
    rounds: int

    @property
    def n_jobs(self) -> int:
        return self.instance.n


class _Budget:
    def __init__(self, predicate: Predicate, max_evals: int) -> None:
        self.predicate = predicate
        self.max_evals = max_evals
        self.evals = 0

    def failing(self, instance: Instance) -> bool:
        if self.evals >= self.max_evals:
            return False
        self.evals += 1
        try:
            return bool(self.predicate(instance))
        except Exception:
            # A predicate crash on a candidate is treated as "not a
            # counterexample": the shrinker must only ever return
            # instances the caller can reproduce cleanly.
            return False


def _with_jobs(instance: Instance, jobs: Sequence[Job]) -> Instance | None:
    try:
        return Instance(
            jobs=tuple(jobs), g=instance.g, name=instance.name
        ).renumbered()
    except InvalidInstanceError:
        return None


def _drop_jobs(instance: Instance, budget: _Budget) -> Instance | None:
    """ddmin over the job list: chunks of n/2, n/4, ..., then singles."""
    jobs = list(instance.jobs)
    chunk = max(1, len(jobs) // 2)
    while chunk >= 1:
        i = 0
        progressed = False
        while i < len(jobs) and len(jobs) > 1:
            candidate_jobs = jobs[:i] + jobs[i + chunk :]
            if not candidate_jobs:
                i += chunk
                continue
            candidate = _with_jobs(instance, candidate_jobs)
            if candidate is not None and budget.failing(candidate):
                jobs = candidate_jobs
                progressed = True
            else:
                i += chunk
        if chunk == 1 and not progressed:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else 0
    if len(jobs) < instance.n:
        return _with_jobs(instance, jobs)
    return None


def _shrink_field(
    instance: Instance,
    budget: _Budget,
    mutate: Callable[[Job, int], Job | None],
    steps: Callable[[Job], Sequence[int]],
) -> Instance | None:
    """Apply ``mutate(job, step)`` per job, largest steps first."""
    current = instance
    progressed = False
    for pos in range(current.n):
        for step in steps(current.jobs[pos]):
            job = current.jobs[pos]
            mutated = mutate(job, step)
            if mutated is None:
                continue
            jobs = list(current.jobs)
            jobs[pos] = mutated
            candidate = _with_jobs(current, jobs)
            if candidate is not None and budget.failing(candidate):
                current = candidate
                progressed = True
    return current if progressed else None


def _halving_steps(span: int) -> list[int]:
    """Step sizes ``span//2, span//4, ..., 1`` (empty when span <= 0)."""
    out: list[int] = []
    step = span // 2
    while step >= 1:
        out.append(step)
        step //= 2
    if span >= 1 and (not out or out[-1] != 1):
        out.append(1)
    return out


def _shrink_processing(instance: Instance, budget: _Budget) -> Instance | None:
    def mutate(job: Job, step: int) -> Job | None:
        if job.processing - step < 1:
            return None
        return replace(job, processing=job.processing - step)

    return _shrink_field(
        instance, budget, mutate, lambda j: _halving_steps(j.processing - 1)
    )


def _shrink_windows(instance: Instance, budget: _Budget) -> Instance | None:
    def raise_release(job: Job, step: int) -> Job | None:
        if job.deadline - (job.release + step) < job.processing:
            return None
        return job.with_window(job.release + step, job.deadline)

    def lower_deadline(job: Job, step: int) -> Job | None:
        if (job.deadline - step) - job.release < job.processing:
            return None
        return job.with_window(job.release, job.deadline - step)

    steps = lambda j: _halving_steps(j.slack)  # noqa: E731
    out = _shrink_field(instance, budget, lower_deadline, steps)
    base = out or instance
    out2 = _shrink_field(base, budget, raise_release, steps)
    return out2 or out


def _shrink_capacity(instance: Instance, budget: _Budget) -> Instance | None:
    current = instance
    progressed = False
    for step in _halving_steps(instance.g - 1):
        while current.g - step >= 1:
            candidate = Instance(
                jobs=current.jobs, g=current.g - step, name=current.name
            )
            if budget.failing(candidate):
                current = candidate
                progressed = True
            else:
                break
    return current if progressed else None


def _normalize(instance: Instance, budget: _Budget) -> Instance | None:
    if not instance.jobs:
        return None
    offset = min(j.release for j in instance.jobs)
    if offset == 0:
        return None
    jobs = [
        j.with_window(j.release - offset, j.deadline - offset)
        for j in instance.jobs
    ]
    candidate = _with_jobs(instance, jobs)
    if candidate is not None and budget.failing(candidate):
        return candidate
    return None


_PASSES = (
    _drop_jobs,
    _shrink_processing,
    _shrink_windows,
    _shrink_capacity,
    _normalize,
)


def shrink_instance(
    instance: Instance,
    still_failing: Predicate,
    *,
    max_evals: int = 400,
    max_rounds: int = 8,
) -> ShrinkResult:
    """Minimize ``instance`` while ``still_failing`` stays true.

    The input itself must satisfy the predicate; the result is the
    smallest instance reached before the passes fix-point (or the
    evaluation budget runs out).
    """
    budget = _Budget(still_failing, max_evals)
    current = instance
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        progressed = False
        for pass_fn in _PASSES:
            smaller = pass_fn(current, budget)
            if smaller is not None:
                current = smaller
                progressed = True
            if budget.evals >= max_evals:
                break
        if not progressed or budget.evals >= max_evals:
            break
    named = Instance(
        jobs=current.jobs,
        g=current.g,
        name=f"shrunk({instance.name or 'unnamed'})",
    )
    return ShrinkResult(instance=named, evals=budget.evals, rounds=rounds)
