"""Machine-checked invariants of the paper, as reusable properties.

Every quantitative claim the reproduction makes is encoded here once and
consumed twice: by the fuzzing oracle (:mod:`repro.verify.oracle`) on
random instances, and by the seeded smoke sweep in ``tests/test_verify.py``.
Each check returns a list of :class:`Violation` (empty means the property
holds), so callers can aggregate findings instead of dying on the first
``assert``.

Checked properties (with their paper anchors):

* ``schedule``   — the emitted :class:`Schedule` has no violations;
* ``repairs``    — Section 4's feasibility proof means the defensive
  repair loop never fires (``repairs == 0``);
* ``budget``     — Lemma 3.3: ``x̃([m]) ≤ (9/5)·x([m])``;
* ``transform``  — Lemma 3.1 / Claim 1: push-down invariant, topmost-set
  structure, and conservation of open mass and per-job volume;
* ``rounding``   — the production rounding matches an independent
  reference implementation of Algorithm 1 (differential check);
* ``classify``   — Section 4.2's B/C1/C2 typing partitions ``I``;
* ``node-flow``  — the rounded vector passes the Lemma 4.1 flow test;
* ``sandwich``   — ``LP ≤ OPT ≤ ALG ≤ (9/5)·LP`` (OPT from
  :mod:`repro.baselines.exact` when affordable).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, floor

import numpy as np

from repro.core.rounding import APPROX_FACTOR, RoundingResult
from repro.core.transform import (
    TransformedLP,
    verify_claim1,
    verify_pushdown_invariant,
)
from repro.tree.canonical import CanonicalInstance
from repro.tree.node import WindowForest
from repro.util.errors import IntegralityError
from repro.util.numeric import EPS, SUM_EPS

#: Names of all properties the oracle can report, for documentation/CLI.
PROPERTY_NAMES = (
    "schedule",
    "repairs",
    "budget",
    "transform",
    "rounding",
    "classify",
    "node-flow",
    "sandwich",
    "crash",
)


@dataclass(frozen=True)
class Violation:
    """One failed property on one instance."""

    prop: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.prop}] {self.detail}"


# ---------------------------------------------------------------------------
# Reference Algorithm 1 (differential target)
# ---------------------------------------------------------------------------


def reference_round(
    forest: WindowForest, x: np.ndarray, topmost: list[int]
) -> np.ndarray:
    """Independent re-implementation of Algorithm 1, straight from the text.

    Kept deliberately simple (dicts and explicit loops, no shared helpers
    with :func:`repro.core.rounding.round_solution`) so an edit that
    breaks the production rounding — e.g. re-introducing banker's
    ``round()`` — shows up as a vector mismatch.  Tie-breaking (preorder
    candidate choice, the same EPS/SUM_EPS tolerances) follows the spec so
    healthy runs agree exactly.
    """
    tops = set(topmost)
    x_tilde: dict[int, float] = {}
    for i in range(forest.m):
        if i in tops:
            x_tilde[i] = float(floor(x[i] + EPS))
        else:
            nearest = floor(x[i] + 0.5)
            if abs(float(x[i]) - nearest) > EPS:
                raise IntegralityError(
                    f"reference rounding: node {i} off I has non-integral "
                    f"x = {float(x[i])!r}",
                    node=i,
                    value=float(x[i]),
                )
            x_tilde[i] = float(nearest)

    anc_of_i: set[int] = set()
    for i in topmost:
        anc_of_i.update(forest.ancestors(i))
    for i in forest.postorder:
        if i not in anc_of_i:
            continue
        des = forest.descendants(i)
        x_sum = sum(float(x[k]) for k in des)
        while True:
            tilde_sum = sum(x_tilde[k] for k in des)
            if APPROX_FACTOR * x_sum < tilde_sum + 1.0 - SUM_EPS:
                break
            candidate = None
            for k in des:  # preorder, matching production tie-breaking
                if k in tops and x_tilde[k] < float(x[k]) - EPS:
                    candidate = k
                    break
            if candidate is None:
                break
            x_tilde[candidate] = float(ceil(x[candidate] - EPS))
    return np.array([x_tilde[i] for i in range(forest.m)], dtype=float)


# ---------------------------------------------------------------------------
# Individual property checks
# ---------------------------------------------------------------------------


def check_schedule(schedule) -> list[Violation]:
    """The independent :class:`Schedule` validator finds nothing."""
    return [Violation("schedule", p) for p in schedule.violations()]


def check_repairs(repairs: int) -> list[Violation]:
    """Section 4: the rounded vector is feasible without repair."""
    if repairs != 0:
        return [
            Violation(
                "repairs",
                f"repair loop fired {repairs} time(s); Theorem 4.5 says the "
                "rounded vector is already feasible",
            )
        ]
    return []


def check_budget(x: np.ndarray, x_tilde: np.ndarray) -> list[Violation]:
    """Lemma 3.3: ``x̃([m]) ≤ (9/5)·x([m])``."""
    total, budget = float(x_tilde.sum()), APPROX_FACTOR * float(x.sum())
    if total > budget + SUM_EPS:
        return [
            Violation(
                "budget",
                f"x̃([m]) = {total} exceeds (9/5)·x([m]) = {budget}",
            )
        ]
    return []


def check_transform(
    forest: WindowForest,
    x_before: np.ndarray,
    y_before: np.ndarray,
    transformed: TransformedLP,
) -> list[Violation]:
    """Lemma 3.1 invariant, Claim 1 structure, and mass conservation."""
    out: list[Violation] = []
    if not verify_pushdown_invariant(forest, transformed.x):
        out.append(
            Violation(
                "transform",
                "push-down invariant violated: a positive node has an "
                "unsaturated strict descendant",
            )
        )
    for problem in verify_claim1(forest, transformed.x, transformed.topmost):
        out.append(Violation("transform", f"Claim 1: {problem}"))
    before, after = float(x_before.sum()), float(transformed.x.sum())
    if abs(before - after) > SUM_EPS:
        out.append(
            Violation(
                "transform",
                f"open mass changed: x([m]) {before} -> {after}",
            )
        )
    vol_before = np.asarray(y_before).sum(axis=0)
    vol_after = np.asarray(transformed.y).sum(axis=0)
    if vol_before.shape == vol_after.shape and vol_before.size:
        drift = float(np.max(np.abs(vol_before - vol_after)))
        if drift > SUM_EPS:
            out.append(
                Violation(
                    "transform",
                    f"per-job volume changed by up to {drift} during push-down",
                )
            )
    return out


def check_rounding_reference(
    forest: WindowForest,
    x: np.ndarray,
    topmost: list[int],
    rounding: RoundingResult,
) -> list[Violation]:
    """Differential check: production x̃ equals the reference Algorithm 1."""
    try:
        expected = reference_round(forest, x, topmost)
    except IntegralityError as exc:
        return [
            Violation(
                "rounding",
                f"reference rounding rejected the transformed solution: {exc}",
            )
        ]
    if not rounding.budget_ok:
        return [Violation("rounding", "RoundingResult.budget_ok is False")]
    diff = np.flatnonzero(np.abs(rounding.x_tilde - expected) > EPS)
    if diff.size:
        pairs = ", ".join(
            f"node {i}: got {rounding.x_tilde[i]}, reference {expected[i]}"
            for i in diff[:5]
        )
        return [
            Violation(
                "rounding",
                f"x̃ diverges from reference Algorithm 1 at {diff.size} "
                f"node(s): {pairs}",
            )
        ]
    return []


def check_classification(
    forest: WindowForest,
    x: np.ndarray,
    x_tilde: np.ndarray,
    topmost: list[int],
) -> list[Violation]:
    """Section 4.2: every topmost node types as B, C1 or C2."""
    from repro.core.rounding import classify_topmost

    try:
        types = classify_topmost(forest, x, x_tilde, topmost)
    except IntegralityError as exc:
        return [Violation("classify", str(exc))]
    out: list[Violation] = []
    if set(types) != set(topmost):
        out.append(
            Violation(
                "classify",
                f"typing covers {sorted(types)} but I = {sorted(topmost)}",
            )
        )
    bad = {i: t for i, t in types.items() if t not in ("B", "C1", "C2")}
    if bad:
        out.append(Violation("classify", f"unknown types: {bad}"))
    return out


def check_node_flow(
    canonical: CanonicalInstance, x_tilde: np.ndarray
) -> list[Violation]:
    """Lemma 4.1: the rounded vector admits a node-level assignment."""
    from repro.flow.feasibility import node_feasible

    if not node_feasible(
        canonical.instance,
        canonical.forest,
        canonical.job_node,
        x_tilde.astype(int),
    ):
        return [
            Violation(
                "node-flow",
                "rounded x̃ rejected by the Lemma 4.1 flow network",
            )
        ]
    return []


def check_sandwich(
    lp_value: float, active_time: int, optimum: int | None
) -> list[Violation]:
    """``LP ≤ OPT ≤ ALG ≤ (9/5)·LP`` (OPT optional)."""
    out: list[Violation] = []
    if active_time > APPROX_FACTOR * lp_value + SUM_EPS:
        out.append(
            Violation(
                "sandwich",
                f"ALG = {active_time} exceeds (9/5)·LP = "
                f"{APPROX_FACTOR * lp_value}",
            )
        )
    if optimum is not None:
        if lp_value > optimum + SUM_EPS:
            out.append(
                Violation(
                    "sandwich",
                    f"LP value {lp_value} exceeds OPT = {optimum}: the "
                    "relaxation is not a lower bound",
                )
            )
        if active_time < optimum:
            out.append(
                Violation(
                    "sandwich",
                    f"ALG = {active_time} beats OPT = {optimum}: one of the "
                    "two solvers is wrong",
                )
            )
    return out
