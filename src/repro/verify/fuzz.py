"""Randomized differential-testing campaigns over the scheduling pipeline.

A *campaign* draws ``n_instances`` random instances from one of three
families, runs the :mod:`repro.verify.oracle` on each, shrinks any failure
to a minimal counterexample, and emits a benchkit-style JSON report plus
one counterexample file per distinct failure (via :mod:`repro.instances.io`,
so a failing instance can be committed under ``tests/counterexamples/`` and
replayed forever).

Families
--------

``laminar``
    :func:`repro.instances.generators.random_laminar` with randomized
    size/capacity/horizon/unit-fraction — the main paper pipeline.
``general``
    :func:`repro.instances.generators.random_general` (crossing windows),
    exercising the baseline cross-checks.
``tight``
    The named parametric families of :mod:`repro.instances.families`
    (gap instances, rigid chains, umbrella constructions) with random
    small parameters, optionally perturbed by dropping a random job —
    adversarial inputs sitting exactly on the paper's analytic boundaries.
``mixed``
    Round-robin over the three above (the default).

Determinism: every instance's seed is derived from ``(campaign seed,
index)``, so a campaign is reproducible and any single failing index can
be regenerated in isolation.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.instances.jobs import Instance
from repro.verify.oracle import (
    DEFAULT_EXACT_MAX_JOBS,
    OracleReport,
    verify_instance,
)
from repro.verify.shrinker import shrink_instance

#: Schema marker for fuzz reports (separate from BenchResult's schema —
#: fuzz campaigns are not benchmarks and carry no ``bench_id``).
FUZZ_SCHEMA_VERSION = 1

FAMILIES = ("laminar", "general", "tight", "mixed")


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one fuzz campaign."""

    n_instances: int = 100
    seed: int = 0
    family: str = "mixed"
    max_jobs: int = 12
    exact_max_jobs: int = DEFAULT_EXACT_MAX_JOBS
    shrink: bool = True
    backend: str | None = None
    #: Flow probe backend pinned for the campaign (``incremental`` /
    #: ``reference`` / ``differential``); ``None`` keeps the process
    #: default.  ``differential`` turns every greedy/exact probe into a
    #: cross-check of the incremental engine against the from-scratch
    #: path — any disagreement surfaces as a ``crash`` violation.
    flow_backend: str | None = None

    def __post_init__(self) -> None:
        from repro.flow.incremental import FLOW_BACKENDS

        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown family {self.family!r}; pick one of {FAMILIES}"
            )
        if self.flow_backend is not None and (
            self.flow_backend not in FLOW_BACKENDS
        ):
            raise ValueError(
                f"unknown flow backend {self.flow_backend!r}; "
                f"pick one of {FLOW_BACKENDS}"
            )
        if self.n_instances < 1:
            raise ValueError("n_instances must be >= 1")
        if self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")


@dataclass
class FuzzFailure:
    """One oracle violation, before and after shrinking."""

    index: int
    family: str
    report: OracleReport
    shrunk: Instance | None = None
    shrink_evals: int = 0

    @property
    def minimal(self) -> Instance:
        return self.shrunk if self.shrunk is not None else self.report.instance


@dataclass
class FuzzResult:
    """Outcome of :func:`run_fuzz`."""

    config: FuzzConfig
    checked: int = 0
    skipped_infeasible: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    wall_time_s: float = 0.0
    solver: dict[str, Any] = field(default_factory=dict)
    flow: dict[str, Any] = field(default_factory=dict)
    counterexample_paths: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _sample_laminar(rng: random.Random, seed: int, max_jobs: int) -> Instance:
    from repro.instances.generators import random_laminar

    n = rng.randint(1, max_jobs)
    return random_laminar(
        n,
        rng.randint(1, 4),
        horizon=rng.randint(max(4, n), max(8, 3 * n)),
        unit_fraction=rng.choice((0.0, 0.3, 0.7, 1.0)),
        seed=seed,
    )


def _sample_general(rng: random.Random, seed: int, max_jobs: int) -> Instance:
    from repro.instances.generators import random_general

    n = rng.randint(1, max_jobs)
    horizon = rng.randint(max(6, n), max(10, 3 * n))
    return random_general(
        n,
        rng.randint(1, 4),
        horizon=horizon,
        p_max=rng.randint(1, min(5, horizon - 1)),
        seed=seed,
    )


def _sample_tight(rng: random.Random, seed: int, max_jobs: int) -> Instance:
    from repro.instances.families import ALL_FAMILIES

    name = rng.choice(sorted(ALL_FAMILIES))
    build = ALL_FAMILIES[name]
    if name == "section5_gap":
        inst = build(rng.randint(1, 4))
    elif name == "natural_gap":
        inst = build(rng.randint(1, 3), rng.randint(1, 3))
    elif name == "rigid_chain":
        inst = build(rng.randint(1, 6))
    elif name == "batched_groups":
        inst = build(rng.randint(1, 4), rng.randint(1, 3))
    elif name == "greedy_trap":
        inst = build(rng.randint(2, 4))
    elif name == "two_level":
        inst = build(rng.randint(1, 3), rng.randint(1, 4))
    else:  # future families: try the one-int signature, fall back to laminar
        try:
            inst = build(rng.randint(1, 4))
        except TypeError:
            return _sample_laminar(rng, seed, max_jobs)
    if inst.n > 1 and rng.random() < 0.25:
        # Perturb off the analytic boundary: drop one random job.
        jobs = list(inst.jobs)
        jobs.pop(rng.randrange(len(jobs)))
        inst = Instance(
            jobs=tuple(jobs), g=inst.g, name=f"{inst.name}-dropped"
        ).renumbered()
    return inst


_SAMPLERS: dict[str, Callable[[random.Random, int, int], Instance]] = {
    "laminar": _sample_laminar,
    "general": _sample_general,
    "tight": _sample_tight,
}


def sample_instance(config: FuzzConfig, index: int) -> Instance:
    """The ``index``-th instance of the campaign (pure function of config)."""
    derived = (config.seed * 1_000_003 + index) & 0x7FFFFFFF
    rng = random.Random(derived)
    family = config.family
    if family == "mixed":
        family = FAMILIES[index % 3]
    return _SAMPLERS[family](rng, derived, config.max_jobs)


def run_fuzz(
    config: FuzzConfig,
    *,
    out_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    verify: Callable[..., OracleReport] = verify_instance,
) -> FuzzResult:
    """Run one campaign; write counterexamples into ``out_dir`` if given.

    ``verify`` is injectable so tests can wrap the oracle (e.g. fault
    injection); production callers leave the default.
    """
    from repro.flow.incremental import (
        flow_stats,
        flow_stats_delta,
        set_flow_backend,
    )
    from repro.instances.io import dump_instance
    from repro.solver.service import solver_stats
    from repro.solver.stats import stats_delta

    result = FuzzResult(config=config)
    before = solver_stats()
    flow_before = flow_stats()
    previous_flow_backend = (
        set_flow_backend(config.flow_backend)
        if config.flow_backend is not None
        else None
    )
    t0 = time.perf_counter()
    try:
        _run_campaign(config, result, verify, progress)
    finally:
        if config.flow_backend is not None:
            set_flow_backend(previous_flow_backend)
    result.wall_time_s = time.perf_counter() - t0
    result.solver = stats_delta(solver_stats(), before)
    result.flow = flow_stats_delta(flow_stats(), flow_before)

    if out_dir is not None and result.failures:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for failure in result.failures:
            props = "-".join(failure.report.property_names()) or "unknown"
            path = out / (
                f"cex_seed{config.seed}_idx{failure.index}_{props}.json"
            )
            dump_instance(failure.minimal, path)
            result.counterexample_paths.append(str(path))
    return result


def _run_campaign(
    config: FuzzConfig,
    result: FuzzResult,
    verify: Callable[..., OracleReport],
    progress: Callable[[str], None] | None,
) -> None:
    """The campaign loop proper (backend pinning handled by the caller)."""
    for index in range(config.n_instances):
        instance = sample_instance(config, index)
        family = (
            config.family if config.family != "mixed" else FAMILIES[index % 3]
        )
        report = verify(
            instance,
            exact_max_jobs=config.exact_max_jobs,
            backend=config.backend,
        )
        if report.status == "infeasible":
            result.skipped_infeasible += 1
            continue
        result.checked += 1
        if report.failed:
            failure = FuzzFailure(index=index, family=family, report=report)
            if config.shrink:
                props = report.property_names()

                def failing(candidate: Instance) -> bool:
                    rep = verify(
                        candidate,
                        exact_max_jobs=config.exact_max_jobs,
                        backend=config.backend,
                    )
                    return rep.failed and bool(
                        set(props) & set(rep.property_names())
                    )

                shrunk = shrink_instance(instance, failing)
                failure.shrunk = shrunk.instance
                failure.shrink_evals = shrunk.evals
            result.failures.append(failure)
            if progress is not None:
                progress(
                    f"instance #{index} violates "
                    f"{', '.join(report.property_names())} "
                    f"(shrunk to n={failure.minimal.n})"
                )


def fuzz_report_dict(result: FuzzResult) -> dict[str, Any]:
    """JSON-compatible campaign report (benchkit-style provenance)."""
    from repro.benchkit.result import environment_fingerprint

    config = result.config
    return {
        "schema_version": FUZZ_SCHEMA_VERSION,
        "kind": "fuzz-report",
        "config": {
            "n_instances": config.n_instances,
            "seed": config.seed,
            "family": config.family,
            "max_jobs": config.max_jobs,
            "exact_max_jobs": config.exact_max_jobs,
            "shrink": config.shrink,
            "backend": config.backend,
            "flow_backend": config.flow_backend,
        },
        "checked": result.checked,
        "skipped_infeasible": result.skipped_infeasible,
        "n_failures": len(result.failures),
        "ok": result.ok,
        "failures": [
            {
                "index": f.index,
                "family": f.family,
                "properties": f.report.property_names(),
                "violations": [
                    {"prop": v.prop, "detail": v.detail}
                    for v in f.report.violations
                ],
                "original_n": f.report.instance.n,
                "shrunk_n": f.minimal.n,
                "shrink_evals": f.shrink_evals,
                "instance": _instance_dict(f.minimal),
            }
            for f in result.failures
        ],
        "counterexample_paths": result.counterexample_paths,
        "wall_time_s": result.wall_time_s,
        "solver": result.solver,
        "flow": result.flow,
        "environment": environment_fingerprint(),
    }


def _instance_dict(instance: Instance) -> dict[str, Any]:
    from repro.instances.io import instance_to_dict

    return instance_to_dict(instance)


def write_fuzz_report(result: FuzzResult, path: str | Path) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(fuzz_report_dict(result), indent=2))


# ---------------------------------------------------------------------------
# Twin fuzzing: differential replay of random event traces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TwinFuzzConfig:
    """Parameters of one twin replay campaign.

    Each trace is replayed through a ``differential`` twin session, so
    every event's incremental repair is cross-checked against the
    from-scratch flow path; the committed history is then audited by the
    independent machine model, and the whole trace is replayed a second
    time on the plain ``incremental`` backend to confirm the diff stream
    is deterministic (and that the cross-checks are read-only).
    """

    n_traces: int = 20
    n_events: int = 60
    seed: int = 0
    g_max: int = 4
    p_max: int = 4
    slack_max: int = 8

    def __post_init__(self) -> None:
        if self.n_traces < 1:
            raise ValueError("n_traces must be >= 1")
        if self.n_events < 1:
            raise ValueError("n_events must be >= 1")
        if self.g_max < 1:
            raise ValueError("g_max must be >= 1")


@dataclass
class TwinFuzzResult:
    """Outcome of :func:`run_twin_fuzz`."""

    config: TwinFuzzConfig
    traces: int = 0
    events: int = 0
    accepted: int = 0
    rejected: int = 0
    committed_units: int = 0
    mismatches: list[dict[str, Any]] = field(default_factory=list)
    audit_failures: list[dict[str, Any]] = field(default_factory=list)
    determinism_failures: list[dict[str, Any]] = field(default_factory=list)
    wall_time_s: float = 0.0
    flow: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not (
            self.mismatches or self.audit_failures or self.determinism_failures
        )


def twin_trace_for(config: TwinFuzzConfig, index: int):
    """The ``index``-th trace of the campaign (pure function of config)."""
    from repro.twin.events import random_trace

    derived = (config.seed * 1_000_003 + index) & 0x7FFFFFFF
    g = derived % config.g_max + 1
    return random_trace(
        config.n_events,
        g,
        seed=derived,
        p_max=config.p_max,
        slack_max=config.slack_max,
        name=f"twin-fuzz-s{config.seed}-i{index}",
    )


def run_twin_fuzz(
    config: TwinFuzzConfig,
    *,
    progress: Callable[[str], None] | None = None,
) -> TwinFuzzResult:
    """Replay seeded random traces with every cross-check armed."""
    from repro.flow.incremental import flow_stats, flow_stats_delta
    from repro.simulate.machine import BatchMachine
    from repro.twin import TwinSession, twin_fingerprint
    from repro.twin.session import TwinMismatchError
    from repro.util.errors import InvalidInstanceError

    result = TwinFuzzResult(config=config)
    flow_before = flow_stats()
    t0 = time.perf_counter()
    for index in range(config.n_traces):
        trace = twin_trace_for(config, index)
        session = TwinSession(
            trace.g, start=trace.start, backend="differential"
        )
        diffs = []
        broke = False
        for event_index, event in enumerate(trace.events):
            try:
                diffs.append(session.apply(event))
            except TwinMismatchError as exc:
                result.mismatches.append(
                    {
                        "trace": index,
                        "event_index": event_index,
                        "error": str(exc),
                    }
                )
                broke = True
                break
        result.traces += 1
        result.events += len(diffs)
        result.accepted += sum(1 for d in diffs if d.accepted)
        result.rejected += sum(1 for d in diffs if not d.accepted)
        result.committed_units += session.counters["committed_units"]
        if broke:
            if progress is not None:
                progress(f"trace #{index}: MISMATCH at event {event_index}")
            continue
        try:
            BatchMachine(trace.g).audit_twin(session)
        except InvalidInstanceError as exc:
            result.audit_failures.append({"trace": index, "error": str(exc)})
            if progress is not None:
                progress(f"trace #{index}: audit failed: {exc}")
        replayed = TwinSession(
            trace.g, start=trace.start, backend="incremental"
        )
        if twin_fingerprint(replayed.replay(trace)) != twin_fingerprint(diffs):
            result.determinism_failures.append({"trace": index})
            if progress is not None:
                progress(f"trace #{index}: diff stream not deterministic")
    result.wall_time_s = time.perf_counter() - t0
    result.flow = flow_stats_delta(flow_stats(), flow_before)
    return result


def twin_fuzz_report_dict(result: TwinFuzzResult) -> dict[str, Any]:
    """JSON-compatible campaign report (benchkit-style provenance)."""
    from repro.benchkit.result import environment_fingerprint

    config = result.config
    return {
        "schema_version": FUZZ_SCHEMA_VERSION,
        "kind": "twin-fuzz-report",
        "config": {
            "n_traces": config.n_traces,
            "n_events": config.n_events,
            "seed": config.seed,
            "g_max": config.g_max,
            "p_max": config.p_max,
            "slack_max": config.slack_max,
        },
        "traces": result.traces,
        "events": result.events,
        "accepted": result.accepted,
        "rejected": result.rejected,
        "committed_units": result.committed_units,
        "n_mismatches": len(result.mismatches),
        "n_audit_failures": len(result.audit_failures),
        "n_determinism_failures": len(result.determinism_failures),
        "ok": result.ok,
        "mismatches": result.mismatches,
        "audit_failures": result.audit_failures,
        "determinism_failures": result.determinism_failures,
        "wall_time_s": result.wall_time_s,
        "flow": result.flow,
        "environment": environment_fingerprint(),
    }


def write_twin_fuzz_report(result: TwinFuzzResult, path: str | Path) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(twin_fuzz_report_dict(result), indent=2))


def render_twin_fuzz_result(result: TwinFuzzResult) -> str:
    """Multi-line human summary for the CLI."""
    config = result.config
    lines = [
        f"twin-fuzz: traces={config.n_traces} events/trace={config.n_events} "
        f"seed={config.seed} g_max={config.g_max}",
        f"  replayed {result.events} events "
        f"({result.accepted} accepted, {result.rejected} rejected, "
        f"{result.committed_units} units committed) "
        f"in {result.wall_time_s:.1f}s",
    ]
    for m in result.mismatches:
        lines.append(
            f"  MISMATCH trace #{m['trace']} event {m['event_index']}: "
            f"{m['error']}"
        )
    for a in result.audit_failures:
        lines.append(f"  AUDIT FAIL trace #{a['trace']}: {a['error']}")
    for d in result.determinism_failures:
        lines.append(f"  NON-DETERMINISTIC trace #{d['trace']}")
    if result.ok:
        lines.append("  all replays matched the from-scratch path")
    return "\n".join(lines)


def render_fuzz_result(result: FuzzResult) -> str:
    """Multi-line human summary for the CLI."""
    config = result.config
    lines = [
        f"fuzz: family={config.family} n={config.n_instances} "
        f"seed={config.seed} max_jobs={config.max_jobs}",
        f"  checked {result.checked}, skipped {result.skipped_infeasible} "
        f"infeasible, {len(result.failures)} violation(s) "
        f"in {result.wall_time_s:.1f}s",
    ]
    for failure in result.failures:
        lines.append(
            f"  FAIL #{failure.index} [{failure.family}] "
            f"{', '.join(failure.report.property_names())}: "
            f"n={failure.report.instance.n} -> shrunk n={failure.minimal.n}"
        )
        for violation in failure.report.violations[:3]:
            lines.append(f"    {violation.prop}: {violation.detail}")
    if result.counterexample_paths:
        lines.append("  counterexamples:")
        lines.extend(f"    {p}" for p in result.counterexample_paths)
    if result.ok:
        lines.append("  all properties held")
    return "\n".join(lines)
