"""Randomized differential-testing campaigns over the scheduling pipeline.

A *campaign* draws ``n_instances`` random instances from one of three
families, runs the :mod:`repro.verify.oracle` on each, shrinks any failure
to a minimal counterexample, and emits a benchkit-style JSON report plus
one counterexample file per distinct failure (via :mod:`repro.instances.io`,
so a failing instance can be committed under ``tests/counterexamples/`` and
replayed forever).

Families
--------

``laminar``
    :func:`repro.instances.generators.random_laminar` with randomized
    size/capacity/horizon/unit-fraction — the main paper pipeline.
``general``
    :func:`repro.instances.generators.random_general` (crossing windows),
    exercising the baseline cross-checks.
``tight``
    The named parametric families of :mod:`repro.instances.families`
    (gap instances, rigid chains, umbrella constructions) with random
    small parameters, optionally perturbed by dropping a random job —
    adversarial inputs sitting exactly on the paper's analytic boundaries.
``mixed``
    Round-robin over the three above (the default).

Determinism: every instance's seed is derived from ``(campaign seed,
index)`` via the shared :func:`repro.util.seeds.derive_seed` helper, so
a campaign is reproducible, any single failing index can be regenerated
in isolation, and a corpus built at the same seed holds the *same*
instances under the same keys.

Scale features (corpus-backed campaigns):

* ``FuzzConfig.corpus`` streams instances from a persistent
  :mod:`repro.corpus` store instead of regenerating them (the manifest
  is checked against the campaign seed/family/caps, and every entry key
  is checked against :func:`~repro.util.seeds.derive_seed` — key drift
  is a hard error, not silent wrong coverage);
* ``FuzzConfig.shard_index / shard_count`` deterministically split one
  campaign across CI jobs or machines (instance ``index % count ==
  shard_index``); the union of all shards is exactly the unsharded
  campaign and :func:`merge_fuzz_reports` reassembles their reports;
* ``run_fuzz(..., checkpoint=path)`` makes a campaign resumable: the
  loop persists progress (keyed by campaign offsets) every
  ``checkpoint_every`` instances, and a rerun after a mid-campaign kill
  fast-forwards and reproduces the identical result.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.instances.jobs import Instance
from repro.util.seeds import derive_seed
from repro.verify.oracle import (
    DEFAULT_EXACT_MAX_JOBS,
    OracleReport,
    verify_instance,
)
from repro.verify.shrinker import shrink_instance

#: Schema marker for fuzz reports (separate from BenchResult's schema —
#: fuzz campaigns are not benchmarks and carry no ``bench_id``).
#: v2: config block gained ``corpus`` / ``shard_index`` / ``shard_count``.
FUZZ_SCHEMA_VERSION = 2

#: Schema marker for resume checkpoints written by :func:`run_fuzz` /
#: :func:`run_twin_fuzz`.
CHECKPOINT_SCHEMA_VERSION = 1

FAMILIES = ("laminar", "general", "tight", "mixed")


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one fuzz campaign."""

    n_instances: int = 100
    seed: int = 0
    family: str = "mixed"
    max_jobs: int = 12
    exact_max_jobs: int = DEFAULT_EXACT_MAX_JOBS
    shrink: bool = True
    backend: str | None = None
    #: Flow probe backend pinned for the campaign (``incremental`` /
    #: ``reference`` / ``differential``); ``None`` keeps the process
    #: default.  ``differential`` turns every greedy/exact probe into a
    #: cross-check of the incremental engine against the from-scratch
    #: path — any disagreement surfaces as a ``crash`` violation.
    flow_backend: str | None = None
    #: Path to a :mod:`repro.corpus` directory to stream instances from
    #: instead of regenerating them; ``None`` keeps on-the-fly sampling.
    corpus: str | None = None
    #: Deterministic campaign split: this process handles the instances
    #: with ``index % shard_count == shard_index``.  The default
    #: ``0/1`` is the unsharded campaign.
    shard_index: int = 0
    shard_count: int = 1

    def __post_init__(self) -> None:
        from repro.flow.incremental import FLOW_BACKENDS

        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown family {self.family!r}; pick one of {FAMILIES}"
            )
        if self.flow_backend is not None and (
            self.flow_backend not in FLOW_BACKENDS
        ):
            raise ValueError(
                f"unknown flow backend {self.flow_backend!r}; "
                f"pick one of {FLOW_BACKENDS}"
            )
        if self.n_instances < 1:
            raise ValueError("n_instances must be >= 1")
        if self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        if self.shard_count < 1 or not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"invalid shard {self.shard_index}/{self.shard_count}: "
                "need 0 <= shard_index < shard_count"
            )


@dataclass
class FuzzFailure:
    """One oracle violation, before and after shrinking."""

    index: int
    family: str
    report: OracleReport
    shrunk: Instance | None = None
    shrink_evals: int = 0

    @property
    def minimal(self) -> Instance:
        return self.shrunk if self.shrunk is not None else self.report.instance


@dataclass
class FuzzResult:
    """Outcome of :func:`run_fuzz`."""

    config: FuzzConfig
    checked: int = 0
    skipped_infeasible: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    wall_time_s: float = 0.0
    solver: dict[str, Any] = field(default_factory=dict)
    flow: dict[str, Any] = field(default_factory=dict)
    counterexample_paths: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _sample_laminar(rng: random.Random, seed: int, max_jobs: int) -> Instance:
    from repro.instances.generators import random_laminar

    n = rng.randint(1, max_jobs)
    return random_laminar(
        n,
        rng.randint(1, 4),
        horizon=rng.randint(max(4, n), max(8, 3 * n)),
        unit_fraction=rng.choice((0.0, 0.3, 0.7, 1.0)),
        seed=seed,
    )


def _sample_general(rng: random.Random, seed: int, max_jobs: int) -> Instance:
    from repro.instances.generators import random_general

    n = rng.randint(1, max_jobs)
    horizon = rng.randint(max(6, n), max(10, 3 * n))
    return random_general(
        n,
        rng.randint(1, 4),
        horizon=horizon,
        p_max=rng.randint(1, min(5, horizon - 1)),
        seed=seed,
    )


def _sample_tight(rng: random.Random, seed: int, max_jobs: int) -> Instance:
    from repro.instances.families import ALL_FAMILIES

    name = rng.choice(sorted(ALL_FAMILIES))
    build = ALL_FAMILIES[name]
    if name == "section5_gap":
        inst = build(rng.randint(1, 4))
    elif name == "natural_gap":
        inst = build(rng.randint(1, 3), rng.randint(1, 3))
    elif name == "rigid_chain":
        inst = build(rng.randint(1, 6))
    elif name == "batched_groups":
        inst = build(rng.randint(1, 4), rng.randint(1, 3))
    elif name == "greedy_trap":
        inst = build(rng.randint(2, 4))
    elif name == "two_level":
        inst = build(rng.randint(1, 3), rng.randint(1, 4))
    else:  # future families: try the one-int signature, fall back to laminar
        try:
            inst = build(rng.randint(1, 4))
        except TypeError:
            return _sample_laminar(rng, seed, max_jobs)
    if inst.n > 1 and rng.random() < 0.25:
        # Perturb off the analytic boundary: drop one random job.
        jobs = list(inst.jobs)
        jobs.pop(rng.randrange(len(jobs)))
        inst = Instance(
            jobs=tuple(jobs), g=inst.g, name=f"{inst.name}-dropped"
        ).renumbered()
    return inst


_SAMPLERS: dict[str, Callable[[random.Random, int, int], Instance]] = {
    "laminar": _sample_laminar,
    "general": _sample_general,
    "tight": _sample_tight,
}


def campaign_family(family: str, index: int) -> str:
    """The concrete family of campaign item ``index`` (mixed rotates)."""
    return FAMILIES[index % 3] if family == "mixed" else family


def sample_instance(config: FuzzConfig, index: int) -> Instance:
    """The ``index``-th instance of the campaign (pure function of config)."""
    derived = derive_seed(config.seed, index)
    rng = random.Random(derived)
    family = campaign_family(config.family, index)
    return _SAMPLERS[family](rng, derived, config.max_jobs)


def campaign_instances(
    config: FuzzConfig,
) -> Iterator[tuple[int, str, Instance]]:
    """Stream the campaign's ``(index, family, instance)`` triples.

    Honours ``config.corpus`` (persistent store instead of regeneration)
    and the shard split; both paths yield *identical* triples for the
    indices they cover, which is what makes corpora, shards, and
    regenerating campaigns interchangeable.
    """
    if config.corpus is None:
        for index in range(config.n_instances):
            if index % config.shard_count != config.shard_index:
                continue
            yield index, campaign_family(config.family, index), (
                sample_instance(config, index)
            )
        return

    from repro.corpus.store import iter_corpus, read_manifest
    from repro.util.errors import CorpusError

    manifest = read_manifest(config.corpus)
    meta = manifest.get("meta", {})
    for key, want in (
        ("campaign_seed", config.seed),
        ("family", config.family),
        ("max_jobs", config.max_jobs),
    ):
        have = meta.get(key)
        if have is not None and have != want:
            raise CorpusError(
                f"corpus at {config.corpus} was built with {key}={have!r} "
                f"but the campaign wants {want!r} — rebuild the corpus or "
                "fix the campaign config",
                path=str(config.corpus),
            )
    if manifest["entries"] < config.n_instances:
        raise CorpusError(
            f"corpus at {config.corpus} holds {manifest['entries']} "
            f"entries but the campaign wants {config.n_instances}",
            path=str(config.corpus),
        )
    shard = (
        (config.shard_index, config.shard_count)
        if config.shard_count > 1
        else None
    )
    for entry in iter_corpus(
        config.corpus, shard=shard, limit=config.n_instances
    ):
        expected_seed = derive_seed(config.seed, entry.key.index)
        if entry.key.seed != expected_seed or entry.key.index != entry.offset:
            raise CorpusError(
                f"corpus entry at offset {entry.offset} is keyed "
                f"(seed={entry.key.seed}, index={entry.key.index}) but the "
                f"campaign derives seed {expected_seed} for index "
                f"{entry.offset} — corpus keys drifted from campaign keys",
                path=str(config.corpus),
                offset=entry.offset,
            )
        yield entry.key.index, entry.key.family, entry.instance()


def run_fuzz(
    config: FuzzConfig,
    *,
    out_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    verify: Callable[..., OracleReport] = verify_instance,
    checkpoint: str | Path | None = None,
    checkpoint_every: int = 50,
) -> FuzzResult:
    """Run one campaign; write counterexamples into ``out_dir`` if given.

    ``verify`` is injectable so tests can wrap the oracle (e.g. fault
    injection); production callers leave the default.

    ``checkpoint`` makes the campaign resumable: progress (counters plus
    the indices of failures found so far, keyed by campaign offsets) is
    persisted there every ``checkpoint_every`` instances.  If the file
    already exists and matches this config, already-processed indices
    are skipped — recorded failures are re-verified (deterministically)
    to rebuild their reports — so a rerun after a mid-campaign kill
    produces the identical :class:`FuzzResult`.
    """
    from repro.flow.incremental import (
        flow_stats,
        flow_stats_delta,
        set_flow_backend,
    )
    from repro.instances.io import dump_instance
    from repro.solver.service import solver_stats
    from repro.solver.stats import stats_delta

    result = FuzzResult(config=config)
    before = solver_stats()
    flow_before = flow_stats()
    previous_flow_backend = (
        set_flow_backend(config.flow_backend)
        if config.flow_backend is not None
        else None
    )
    t0 = time.perf_counter()
    try:
        _run_campaign(
            config, result, verify, progress, checkpoint, checkpoint_every
        )
    finally:
        if config.flow_backend is not None:
            set_flow_backend(previous_flow_backend)
    result.wall_time_s = time.perf_counter() - t0
    result.solver = stats_delta(solver_stats(), before)
    result.flow = flow_stats_delta(flow_stats(), flow_before)

    if out_dir is not None and result.failures:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for failure in result.failures:
            props = "-".join(failure.report.property_names()) or "unknown"
            path = out / (
                f"cex_seed{config.seed}_idx{failure.index}_{props}.json"
            )
            dump_instance(failure.minimal, path)
            result.counterexample_paths.append(str(path))
    return result


def _config_dict(config: FuzzConfig) -> dict[str, Any]:
    """The report/checkpoint form of a campaign config."""
    return {
        "n_instances": config.n_instances,
        "seed": config.seed,
        "family": config.family,
        "max_jobs": config.max_jobs,
        "exact_max_jobs": config.exact_max_jobs,
        "shrink": config.shrink,
        "backend": config.backend,
        "flow_backend": config.flow_backend,
        "corpus": config.corpus,
        "shard_index": config.shard_index,
        "shard_count": config.shard_count,
    }


def load_checkpoint(
    path: str | Path, config: FuzzConfig
) -> dict[str, Any] | None:
    """Read a resume checkpoint, validating it belongs to ``config``.

    Returns ``None`` when the file does not exist (a fresh campaign).  A
    checkpoint written under a *different* config is an error — resuming
    it would silently mix two campaigns' coverage.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"fuzz checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if doc.get("kind") != "fuzz-checkpoint":
        raise ValueError(f"{path} is not a fuzz checkpoint")
    if doc.get("config") != _config_dict(config):
        raise ValueError(
            f"fuzz checkpoint {path} was written by a different campaign "
            f"config; refusing to resume (delete it to start over)"
        )
    return doc


def _write_checkpoint(
    path: Path,
    config: FuzzConfig,
    result: FuzzResult,
    next_index: int,
    done: bool,
) -> None:
    payload = {
        "kind": "fuzz-checkpoint",
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "config": _config_dict(config),
        "next_index": next_index,
        "checked": result.checked,
        "skipped_infeasible": result.skipped_infeasible,
        "failure_indices": [f.index for f in result.failures],
        "done": done,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2))
    tmp.replace(path)  # atomic: a kill mid-write never corrupts it


def _verify_one(
    config: FuzzConfig,
    result: FuzzResult,
    verify: Callable[..., OracleReport],
    progress: Callable[[str], None] | None,
    index: int,
    family: str,
    instance: Instance,
    *,
    count: bool = True,
) -> None:
    """Oracle one instance; record counters (unless replaying) and failures."""
    report = verify(
        instance,
        exact_max_jobs=config.exact_max_jobs,
        backend=config.backend,
    )
    if report.status == "infeasible":
        if count:
            result.skipped_infeasible += 1
        return
    if count:
        result.checked += 1
    if not report.failed:
        return
    failure = FuzzFailure(index=index, family=family, report=report)
    if config.shrink:
        props = report.property_names()

        def failing(candidate: Instance) -> bool:
            rep = verify(
                candidate,
                exact_max_jobs=config.exact_max_jobs,
                backend=config.backend,
            )
            return rep.failed and bool(set(props) & set(rep.property_names()))

        shrunk = shrink_instance(instance, failing)
        failure.shrunk = shrunk.instance
        failure.shrink_evals = shrunk.evals
    result.failures.append(failure)
    if progress is not None:
        progress(
            f"instance #{index} violates "
            f"{', '.join(report.property_names())} "
            f"(shrunk to n={failure.minimal.n})"
        )


def _run_campaign(
    config: FuzzConfig,
    result: FuzzResult,
    verify: Callable[..., OracleReport],
    progress: Callable[[str], None] | None,
    checkpoint: str | Path | None = None,
    checkpoint_every: int = 50,
) -> None:
    """The campaign loop proper (backend pinning handled by the caller).

    One pass over :func:`campaign_instances` covers both the fresh and
    the resumed case: indices below the checkpoint's ``next_index`` are
    fast-forwarded (recorded failures re-verified without bumping
    counters — deterministic, so the reconstructed reports are the ones
    the killed run saw), everything after runs normally with periodic
    checkpoint writes.
    """
    next_index = 0
    replay_failures: set[int] = set()
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    if checkpoint_path is not None:
        state = load_checkpoint(checkpoint_path, config)
        if state is not None:
            next_index = state["next_index"]
            result.checked = state["checked"]
            result.skipped_infeasible = state["skipped_infeasible"]
            replay_failures = set(state["failure_indices"])
            if progress is not None:
                progress(
                    f"resuming campaign at index {next_index} "
                    f"({result.checked} checked, "
                    f"{len(replay_failures)} known failure(s))"
                )
    processed = 0
    for index, family, instance in campaign_instances(config):
        if index < next_index:
            if index in replay_failures:
                _verify_one(
                    config, result, verify, progress,
                    index, family, instance, count=False,
                )
            continue
        _verify_one(config, result, verify, progress, index, family, instance)
        processed += 1
        if checkpoint_path is not None and processed % checkpoint_every == 0:
            _write_checkpoint(
                checkpoint_path, config, result, index + 1, done=False
            )
    if checkpoint_path is not None:
        _write_checkpoint(
            checkpoint_path, config, result, config.n_instances, done=True
        )


def fuzz_report_dict(result: FuzzResult) -> dict[str, Any]:
    """JSON-compatible campaign report (benchkit-style provenance)."""
    from repro.benchkit.result import environment_fingerprint

    config = result.config
    return {
        "schema_version": FUZZ_SCHEMA_VERSION,
        "kind": "fuzz-report",
        "config": _config_dict(config),
        "checked": result.checked,
        "skipped_infeasible": result.skipped_infeasible,
        "n_failures": len(result.failures),
        "ok": result.ok,
        "failures": [
            {
                "index": f.index,
                "family": f.family,
                "properties": f.report.property_names(),
                "violations": [
                    {"prop": v.prop, "detail": v.detail}
                    for v in f.report.violations
                ],
                "original_n": f.report.instance.n,
                "shrunk_n": f.minimal.n,
                "shrink_evals": f.shrink_evals,
                "instance": _instance_dict(f.minimal),
            }
            for f in result.failures
        ],
        "counterexample_paths": result.counterexample_paths,
        "wall_time_s": result.wall_time_s,
        "solver": result.solver,
        "flow": result.flow,
        "environment": environment_fingerprint(),
    }


def _instance_dict(instance: Instance) -> dict[str, Any]:
    from repro.instances.io import instance_to_dict

    return instance_to_dict(instance)


def write_fuzz_report(result: FuzzResult, path: str | Path) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(fuzz_report_dict(result), indent=2))


#: Report keys that vary run to run (clocks, hardware, process warmth,
#: output paths) — everything else must be bit-for-bit reproducible.
VOLATILE_REPORT_KEYS = (
    "wall_time_s",
    "solver",
    "flow",
    "environment",
    "counterexample_paths",
)


def stable_fuzz_report(doc: dict[str, Any]) -> dict[str, Any]:
    """A report with its volatile (timing/env/path) keys stripped.

    Two campaigns over the same instances — sharded vs. unsharded,
    corpus-backed vs. regenerating, resumed vs. uninterrupted — must
    produce *equal* stable reports; this is the form tests, E17, and the
    CI merge gate compare.
    """
    return {
        k: v for k, v in doc.items() if k not in VOLATILE_REPORT_KEYS
    }


def _merge_numeric(docs: Sequence[Any]) -> Any:
    """Sum numeric leaves across parallel stat blocks (dicts recurse)."""
    first = docs[0]
    if isinstance(first, dict):
        keys: list[str] = []
        for doc in docs:
            keys += [k for k in doc if k not in keys]
        return {
            key: _merge_numeric([d[key] for d in docs if key in d])
            for key in keys
        }
    if isinstance(first, bool) or not isinstance(first, (int, float)):
        return first
    return type(first)(sum(docs))


def merge_fuzz_reports(docs: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Reassemble one campaign report from its shard reports.

    The shards must cover one campaign exactly: same base config, one
    report per ``shard_index`` in ``0..shard_count-1``.  The merged
    report carries the unsharded config (``0/1``) and — apart from the
    volatile keys, where counters sum and the environment is taken from
    the first shard — equals the report an unsharded run would write.
    """
    if not docs:
        raise ValueError("no fuzz reports to merge")
    for doc in docs:
        if doc.get("kind") != "fuzz-report":
            raise ValueError(
                f"cannot merge {doc.get('kind')!r}: not a fuzz report"
            )
    base_configs = []
    shards = []
    for doc in docs:
        config = dict(doc["config"])
        shards.append((config.pop("shard_index"), config.pop("shard_count")))
        base_configs.append(config)
    if any(c != base_configs[0] for c in base_configs[1:]):
        raise ValueError(
            "cannot merge fuzz reports from different campaign configs"
        )
    counts = {n for _, n in shards}
    if len(counts) != 1:
        raise ValueError(f"mixed shard counts {sorted(counts)}")
    count = counts.pop()
    indices = sorted(i for i, _ in shards)
    if indices != list(range(count)):
        raise ValueError(
            f"shard reports do not partition the campaign: have shards "
            f"{indices} of {count}"
        )
    order = sorted(range(len(docs)), key=lambda k: shards[k][0])
    docs = [docs[k] for k in order]
    failures = sorted(
        (f for doc in docs for f in doc["failures"]),
        key=lambda f: f["index"],
    )
    merged_config = dict(base_configs[0])
    merged_config["shard_index"], merged_config["shard_count"] = 0, 1
    paths: list[str] = []
    for doc in docs:
        paths += doc.get("counterexample_paths", [])
    return {
        "schema_version": FUZZ_SCHEMA_VERSION,
        "kind": "fuzz-report",
        "config": merged_config,
        "checked": sum(doc["checked"] for doc in docs),
        "skipped_infeasible": sum(
            doc["skipped_infeasible"] for doc in docs
        ),
        "n_failures": len(failures),
        "ok": all(doc["ok"] for doc in docs),
        "failures": failures,
        "counterexample_paths": paths,
        "wall_time_s": sum(doc.get("wall_time_s", 0.0) for doc in docs),
        "solver": _merge_numeric([doc.get("solver", {}) for doc in docs]),
        "flow": _merge_numeric([doc.get("flow", {}) for doc in docs]),
        "environment": docs[0].get("environment", {}),
    }


# ---------------------------------------------------------------------------
# Twin fuzzing: differential replay of random event traces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TwinFuzzConfig:
    """Parameters of one twin replay campaign.

    Each trace is replayed through a ``differential`` twin session, so
    every event's incremental repair is cross-checked against the
    from-scratch flow path; the committed history is then audited by the
    independent machine model, and the whole trace is replayed a second
    time on the plain ``incremental`` backend to confirm the diff stream
    is deterministic (and that the cross-checks are read-only).
    """

    n_traces: int = 20
    n_events: int = 60
    seed: int = 0
    g_max: int = 4
    p_max: int = 4
    slack_max: int = 8
    #: Deterministic campaign split over trace indices, mirroring
    #: :class:`FuzzConfig` — ``0/1`` is the unsharded campaign.
    shard_index: int = 0
    shard_count: int = 1

    def __post_init__(self) -> None:
        if self.n_traces < 1:
            raise ValueError("n_traces must be >= 1")
        if self.n_events < 1:
            raise ValueError("n_events must be >= 1")
        if self.g_max < 1:
            raise ValueError("g_max must be >= 1")
        if self.shard_count < 1 or not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"invalid shard {self.shard_index}/{self.shard_count}: "
                "need 0 <= shard_index < shard_count"
            )


@dataclass
class TwinFuzzResult:
    """Outcome of :func:`run_twin_fuzz`."""

    config: TwinFuzzConfig
    traces: int = 0
    events: int = 0
    accepted: int = 0
    rejected: int = 0
    committed_units: int = 0
    mismatches: list[dict[str, Any]] = field(default_factory=list)
    audit_failures: list[dict[str, Any]] = field(default_factory=list)
    determinism_failures: list[dict[str, Any]] = field(default_factory=list)
    wall_time_s: float = 0.0
    flow: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not (
            self.mismatches or self.audit_failures or self.determinism_failures
        )


def twin_trace_for(config: TwinFuzzConfig, index: int):
    """The ``index``-th trace of the campaign (pure function of config)."""
    from repro.twin.events import random_trace

    derived = derive_seed(config.seed, index)
    g = derived % config.g_max + 1
    return random_trace(
        config.n_events,
        g,
        seed=derived,
        p_max=config.p_max,
        slack_max=config.slack_max,
        name=f"twin-fuzz-s{config.seed}-i{index}",
    )


def _twin_config_dict(config: TwinFuzzConfig) -> dict[str, Any]:
    return {
        "n_traces": config.n_traces,
        "n_events": config.n_events,
        "seed": config.seed,
        "g_max": config.g_max,
        "p_max": config.p_max,
        "slack_max": config.slack_max,
        "shard_index": config.shard_index,
        "shard_count": config.shard_count,
    }


def _load_twin_checkpoint(
    path: Path, config: TwinFuzzConfig
) -> dict[str, Any] | None:
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"twin-fuzz checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if doc.get("kind") != "twin-fuzz-checkpoint":
        raise ValueError(f"{path} is not a twin-fuzz checkpoint")
    if doc.get("config") != _twin_config_dict(config):
        raise ValueError(
            f"twin-fuzz checkpoint {path} was written by a different "
            "campaign config; refusing to resume (delete it to start over)"
        )
    return doc


def _write_twin_checkpoint(
    path: Path, config: TwinFuzzConfig, result: TwinFuzzResult, next_index: int, done: bool
) -> None:
    payload = {
        "kind": "twin-fuzz-checkpoint",
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "config": _twin_config_dict(config),
        "next_index": next_index,
        "traces": result.traces,
        "events": result.events,
        "accepted": result.accepted,
        "rejected": result.rejected,
        "committed_units": result.committed_units,
        "mismatches": result.mismatches,
        "audit_failures": result.audit_failures,
        "determinism_failures": result.determinism_failures,
        "done": done,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2))
    tmp.replace(path)


def run_twin_fuzz(
    config: TwinFuzzConfig,
    *,
    progress: Callable[[str], None] | None = None,
    checkpoint: str | Path | None = None,
    checkpoint_every: int = 5,
) -> TwinFuzzResult:
    """Replay seeded random traces with every cross-check armed.

    Honours the config's shard split (trace ``index % shard_count ==
    shard_index``) and, with ``checkpoint``, resumes a killed campaign:
    twin failure records are plain dicts, so the checkpoint carries the
    full partial result and a resume fast-forwards past finished traces.
    """
    from repro.flow.incremental import flow_stats, flow_stats_delta
    from repro.simulate.machine import BatchMachine
    from repro.twin import TwinSession, twin_fingerprint
    from repro.twin.session import TwinMismatchError
    from repro.util.errors import InvalidInstanceError

    result = TwinFuzzResult(config=config)
    next_index = 0
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    if checkpoint_path is not None:
        state = _load_twin_checkpoint(checkpoint_path, config)
        if state is not None:
            next_index = state["next_index"]
            result.traces = state["traces"]
            result.events = state["events"]
            result.accepted = state["accepted"]
            result.rejected = state["rejected"]
            result.committed_units = state["committed_units"]
            result.mismatches = list(state["mismatches"])
            result.audit_failures = list(state["audit_failures"])
            result.determinism_failures = list(state["determinism_failures"])
            if progress is not None:
                progress(f"resuming twin campaign at trace {next_index}")
    flow_before = flow_stats()
    t0 = time.perf_counter()
    processed = 0
    for index in range(next_index, config.n_traces):
        if index % config.shard_count != config.shard_index:
            continue
        trace = twin_trace_for(config, index)
        session = TwinSession(
            trace.g, start=trace.start, backend="differential"
        )
        diffs = []
        broke = False
        for event_index, event in enumerate(trace.events):
            try:
                diffs.append(session.apply(event))
            except TwinMismatchError as exc:
                result.mismatches.append(
                    {
                        "trace": index,
                        "event_index": event_index,
                        "error": str(exc),
                    }
                )
                broke = True
                break
        result.traces += 1
        result.events += len(diffs)
        result.accepted += sum(1 for d in diffs if d.accepted)
        result.rejected += sum(1 for d in diffs if not d.accepted)
        result.committed_units += session.counters["committed_units"]
        if broke:
            if progress is not None:
                progress(f"trace #{index}: MISMATCH at event {event_index}")
        else:
            try:
                BatchMachine(trace.g).audit_twin(session)
            except InvalidInstanceError as exc:
                result.audit_failures.append(
                    {"trace": index, "error": str(exc)}
                )
                if progress is not None:
                    progress(f"trace #{index}: audit failed: {exc}")
            replayed = TwinSession(
                trace.g, start=trace.start, backend="incremental"
            )
            if twin_fingerprint(replayed.replay(trace)) != twin_fingerprint(
                diffs
            ):
                result.determinism_failures.append({"trace": index})
                if progress is not None:
                    progress(f"trace #{index}: diff stream not deterministic")
        processed += 1
        if checkpoint_path is not None and processed % checkpoint_every == 0:
            _write_twin_checkpoint(
                checkpoint_path, config, result, index + 1, done=False
            )
    if checkpoint_path is not None:
        _write_twin_checkpoint(
            checkpoint_path, config, result, config.n_traces, done=True
        )
    result.wall_time_s = time.perf_counter() - t0
    result.flow = flow_stats_delta(flow_stats(), flow_before)
    return result


def twin_fuzz_report_dict(result: TwinFuzzResult) -> dict[str, Any]:
    """JSON-compatible campaign report (benchkit-style provenance)."""
    from repro.benchkit.result import environment_fingerprint

    config = result.config
    return {
        "schema_version": FUZZ_SCHEMA_VERSION,
        "kind": "twin-fuzz-report",
        "config": _twin_config_dict(config),
        "traces": result.traces,
        "events": result.events,
        "accepted": result.accepted,
        "rejected": result.rejected,
        "committed_units": result.committed_units,
        "n_mismatches": len(result.mismatches),
        "n_audit_failures": len(result.audit_failures),
        "n_determinism_failures": len(result.determinism_failures),
        "ok": result.ok,
        "mismatches": result.mismatches,
        "audit_failures": result.audit_failures,
        "determinism_failures": result.determinism_failures,
        "wall_time_s": result.wall_time_s,
        "flow": result.flow,
        "environment": environment_fingerprint(),
    }


def write_twin_fuzz_report(result: TwinFuzzResult, path: str | Path) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(twin_fuzz_report_dict(result), indent=2))


def render_twin_fuzz_result(result: TwinFuzzResult) -> str:
    """Multi-line human summary for the CLI."""
    config = result.config
    lines = [
        f"twin-fuzz: traces={config.n_traces} events/trace={config.n_events} "
        f"seed={config.seed} g_max={config.g_max}",
        f"  replayed {result.events} events "
        f"({result.accepted} accepted, {result.rejected} rejected, "
        f"{result.committed_units} units committed) "
        f"in {result.wall_time_s:.1f}s",
    ]
    for m in result.mismatches:
        lines.append(
            f"  MISMATCH trace #{m['trace']} event {m['event_index']}: "
            f"{m['error']}"
        )
    for a in result.audit_failures:
        lines.append(f"  AUDIT FAIL trace #{a['trace']}: {a['error']}")
    for d in result.determinism_failures:
        lines.append(f"  NON-DETERMINISTIC trace #{d['trace']}")
    if result.ok:
        lines.append("  all replays matched the from-scratch path")
    return "\n".join(lines)


def render_fuzz_result(result: FuzzResult) -> str:
    """Multi-line human summary for the CLI."""
    config = result.config
    lines = [
        f"fuzz: family={config.family} n={config.n_instances} "
        f"seed={config.seed} max_jobs={config.max_jobs}",
        f"  checked {result.checked}, skipped {result.skipped_infeasible} "
        f"infeasible, {len(result.failures)} violation(s) "
        f"in {result.wall_time_s:.1f}s",
    ]
    for failure in result.failures:
        lines.append(
            f"  FAIL #{failure.index} [{failure.family}] "
            f"{', '.join(failure.report.property_names())}: "
            f"n={failure.report.instance.n} -> shrunk n={failure.minimal.n}"
        )
        for violation in failure.report.violations[:3]:
            lines.append(f"    {violation.prop}: {violation.detail}")
    if result.counterexample_paths:
        lines.append("  counterexamples:")
        lines.extend(f"    {p}" for p in result.counterexample_paths)
    if result.ok:
        lines.append("  all properties held")
    return "\n".join(lines)
